#include "deploy/repository.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/binio.hh"
#include "common/framing.hh"
#include "common/logging.hh"
#include "nn/executor.hh"
#include "obs/metrics.hh"

namespace fs = std::filesystem;

namespace edgert::deploy {

namespace {

// "ERTM" little-endian, next to the engine plan's "ERTE".
constexpr std::uint32_t kManifestMagic = 0x4D545245;
constexpr std::uint32_t kManifestVersion = 1;
constexpr std::uint32_t kManifestFramedSince = 1;

/** Replace anything a filesystem could object to. */
std::string
sanitize(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '.' && c != '_' && c != '-')
            c = '_';
    return out;
}

Result<std::vector<std::uint8_t>>
readFile(const std::string &path)
{
    std::error_code ec;
    if (!fs::exists(path, ec))
        return errorStatus(ErrorCode::kNotFound, "no such file '",
                           path, "'");
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return errorStatus(ErrorCode::kIoError, "cannot open '",
                           path, "'");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        return errorStatus(ErrorCode::kIoError, "cannot read '",
                           path, "'");
    return bytes;
}

/** Write-then-rename so readers never observe a partial file. */
Status
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &bytes)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary |
                                   std::ios::trunc);
        if (!out)
            return errorStatus(ErrorCode::kIoError,
                               "cannot open '", tmp,
                               "' for writing");
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return errorStatus(ErrorCode::kIoError,
                               "cannot write '", tmp, "'");
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        return errorStatus(ErrorCode::kIoError, "cannot rename '",
                           tmp, "' to '", path,
                           "': ", ec.message());
    return Status();
}

obs::MetricRegistry &
reg()
{
    return obs::MetricRegistry::global();
}

} // namespace

std::string
ModelKey::displayName() const
{
    return sanitize(model) + "@" + sanitize(device) + "@" +
           nn::precisionName(precision);
}

const char *
versionStateName(VersionState s)
{
    switch (s) {
      case VersionState::kCandidate:
        return "candidate";
      case VersionState::kPromoted:
        return "promoted";
      case VersionState::kQuarantined:
        return "quarantined";
      case VersionState::kRetired:
        return "retired";
      case VersionState::kRolledBack:
        return "rolled_back";
    }
    return "unknown";
}

const ManifestEntry *
Manifest::find(int version) const
{
    for (const auto &e : entries)
        if (e.version == version)
            return &e;
    return nullptr;
}

ManifestEntry *
Manifest::find(int version)
{
    for (auto &e : entries)
        if (e.version == version)
            return &e;
    return nullptr;
}

std::vector<std::uint8_t>
Manifest::serialize() const
{
    BinWriter w;
    w.str(key.model);
    w.str(key.device);
    w.u8(static_cast<std::uint8_t>(key.precision));
    w.i64(live_version);
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto &e : entries) {
        w.u32(static_cast<std::uint32_t>(e.version));
        w.u8(static_cast<std::uint8_t>(e.state));
        w.u64(e.build_id);
        w.u64(e.fingerprint);
        w.i64(e.plan_bytes);
        w.i64(e.timing_measurements);
        w.i64(e.timing_cache_hits);
        w.i64(e.timing_shared);
        w.str(e.created_by);
        w.str(e.reason);
        w.f64(e.drift_pct);
        w.i64(e.parent_version);
    }
    return frameWrap(kManifestMagic, kManifestVersion, w.bytes());
}

Result<Manifest>
Manifest::deserialize(const std::vector<std::uint8_t> &bytes)
{
    auto framed =
        frameUnwrap(kManifestMagic, kManifestFramedSince,
                    kManifestVersion, bytes, "engine manifest");
    if (!framed.ok())
        return framed.status();

    BinReader r(framed->payload, BinReader::OnError::kStatus);
    Manifest m;
    m.key.model = r.str();
    m.key.device = r.str();
    std::uint8_t prec = r.u8();
    if (r.ok() && prec > static_cast<std::uint8_t>(
                             nn::Precision::kMixed))
        return errorStatus(ErrorCode::kDataLoss,
                           "engine manifest: precision ",
                           static_cast<int>(prec),
                           " outside its domain");
    m.key.precision = static_cast<nn::Precision>(prec);
    m.live_version = static_cast<int>(r.i64());
    // Every entry is at least 4+1+8+8+8*4+4+4+8+8 bytes.
    std::uint32_t n = r.count(69);
    m.entries.reserve(n);
    int prev_version = 0;
    for (std::uint32_t i = 0; i < n && r.ok(); i++) {
        ManifestEntry e;
        e.version = static_cast<int>(r.u32());
        std::uint8_t state = r.u8();
        if (r.ok() && state > static_cast<std::uint8_t>(
                                  VersionState::kRolledBack))
            return errorStatus(ErrorCode::kDataLoss,
                               "engine manifest: version state ",
                               static_cast<int>(state),
                               " outside its domain");
        e.state = static_cast<VersionState>(state);
        e.build_id = r.u64();
        e.fingerprint = r.u64();
        e.plan_bytes = r.i64();
        e.timing_measurements = r.i64();
        e.timing_cache_hits = r.i64();
        e.timing_shared = r.i64();
        e.created_by = r.str();
        e.reason = r.str();
        e.drift_pct = r.f64();
        e.parent_version = static_cast<int>(r.i64());
        if (r.ok() &&
            (e.version <= prev_version ||
             e.parent_version >= e.version ||
             e.parent_version < -1))
            return errorStatus(
                ErrorCode::kDataLoss,
                "engine manifest: version lineage is not "
                "monotonic (version ",
                e.version, " after ", prev_version, ", parent ",
                e.parent_version, ")");
        prev_version = e.version;
        m.entries.push_back(std::move(e));
    }
    if (!r.ok())
        return r.status().context("engine manifest");
    if (!r.atEnd())
        return errorStatus(ErrorCode::kDataLoss,
                           "engine manifest: ", r.remaining(),
                           " trailing bytes after the last entry");
    if (m.live_version != -1 && !m.find(m.live_version))
        return errorStatus(ErrorCode::kDataLoss,
                           "engine manifest: live version ",
                           m.live_version,
                           " is not among the entries");
    return m;
}

EngineRepository::EngineRepository(std::string root)
    : root_(std::move(root))
{}

Status
EngineRepository::ensureDirs() const
{
    std::error_code ec;
    fs::create_directories(fs::path(root_) / "blobs", ec);
    if (ec)
        return errorStatus(ErrorCode::kIoError,
                           "cannot create '", root_,
                           "/blobs': ", ec.message());
    fs::create_directories(fs::path(root_) / "manifests", ec);
    if (ec)
        return errorStatus(ErrorCode::kIoError,
                           "cannot create '", root_,
                           "/manifests': ", ec.message());
    return Status();
}

std::string
EngineRepository::manifestPath(const ModelKey &key) const
{
    return (fs::path(root_) / "manifests" /
            (key.displayName() + ".ertm"))
        .string();
}

std::string
EngineRepository::blobPath(std::uint64_t fingerprint) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.erte",
                  static_cast<unsigned long long>(fingerprint));
    return (fs::path(root_) / "blobs" / name).string();
}

Status
EngineRepository::saveManifest(const Manifest &m) const
{
    return writeFileAtomic(manifestPath(m.key), m.serialize())
        .context("saving manifest for " + m.key.displayName());
}

Result<Manifest>
EngineRepository::manifest(const ModelKey &key) const
{
    auto bytes = readFile(manifestPath(key));
    if (!bytes.ok())
        return bytes.status().context("manifest for " +
                                      key.displayName());
    auto m = Manifest::deserialize(*bytes);
    if (!m.ok())
        return m.status().context("manifest for " +
                                  key.displayName());
    return m;
}

Result<int>
EngineRepository::put(const core::Engine &engine,
                      const BuildMeta &meta)
{
    Status dirs = ensureDirs();
    if (!dirs.ok())
        return dirs;

    ModelKey key{engine.modelName(), engine.deviceName(),
                 engine.precision()};
    Manifest m;
    auto existing = manifest(key);
    if (existing.ok()) {
        m = std::move(existing).value();
    } else if (existing.status().code() != ErrorCode::kNotFound) {
        // A corrupt manifest must not be silently overwritten —
        // the lineage it held is the operator's to repair.
        return existing.status();
    } else {
        m.key = key;
    }

    std::uint64_t fp = engine.fingerprint();
    std::string blob = blobPath(fp);
    auto plan = engine.serialize();
    std::error_code ec;
    if (!fs::exists(blob, ec)) {
        // Content-addressed: bit-identical rebuilds share a blob.
        Status st = writeFileAtomic(blob, plan);
        if (!st.ok())
            return st;
        reg()
            .counter("deploy.repo.blob_writes",
                     {{"model", key.model}})
            .add();
    }

    ManifestEntry e;
    e.version = m.entries.empty() ? 1
                                  : m.entries.back().version + 1;
    e.state = VersionState::kCandidate;
    e.build_id = meta.provenance.build_id;
    e.fingerprint = fp;
    e.plan_bytes = static_cast<std::int64_t>(plan.size());
    e.timing_measurements = meta.provenance.timing_measurements;
    e.timing_cache_hits = meta.provenance.timing_cache_hits;
    e.timing_shared = meta.provenance.timing_shared;
    e.created_by = meta.created_by;
    e.parent_version = -1;
    int version = e.version;
    m.entries.push_back(std::move(e));

    Status st = saveManifest(m);
    if (!st.ok())
        return st;
    reg().counter("deploy.repo.puts", {{"model", key.model}}).add();
    reg()
        .gauge("deploy.repo.versions", {{"model", key.model}})
        .set(static_cast<double>(m.entries.size()));
    return version;
}

Result<core::Engine>
EngineRepository::loadVersion(const ModelKey &key,
                              int version) const
{
    auto m = manifest(key);
    if (!m.ok())
        return m.status();
    const ManifestEntry *e = m->find(version);
    if (!e)
        return errorStatus(ErrorCode::kNotFound, "no version ",
                           version, " of ", key.displayName());
    auto bytes = readFile(blobPath(e->fingerprint));
    if (!bytes.ok())
        return bytes.status().context(
            "blob of " + key.displayName() + " v" +
            std::to_string(version));
    auto engine = core::Engine::deserialize(*bytes);
    if (!engine.ok())
        return engine.status().context(
            "blob of " + key.displayName() + " v" +
            std::to_string(version));
    if (engine->fingerprint() != e->fingerprint)
        return errorStatus(
            ErrorCode::kDataLoss, "blob of ", key.displayName(),
            " v", version,
            " does not match its manifest fingerprint");
    return engine;
}

Result<core::Engine>
EngineRepository::loadLive(const ModelKey &key) const
{
    auto m = manifest(key);
    if (!m.ok())
        return m.status();
    if (m->live_version < 0)
        return errorStatus(ErrorCode::kNotFound,
                           "no live version of ",
                           key.displayName());
    return loadVersion(key, m->live_version);
}

Status
EngineRepository::promote(const ModelKey &key, int version)
{
    auto mr = manifest(key);
    if (!mr.ok())
        return mr.status();
    Manifest m = std::move(mr).value();
    ManifestEntry *e = m.find(version);
    if (!e)
        return errorStatus(ErrorCode::kNotFound, "no version ",
                           version, " of ", key.displayName());
    if (m.live_version == version)
        return Status();
    if (ManifestEntry *old = m.find(m.live_version)) {
        old->state = VersionState::kRetired;
        e->parent_version = old->version;
    }
    e->state = VersionState::kPromoted;
    e->reason.clear();
    m.live_version = version;
    Status st = saveManifest(m);
    if (!st.ok())
        return st;
    reg()
        .counter("deploy.repo.promotions", {{"model", key.model}})
        .add();
    reg()
        .gauge("deploy.repo.live_version", {{"model", key.model}})
        .set(static_cast<double>(version));
    return Status();
}

Status
EngineRepository::quarantine(const ModelKey &key, int version,
                             const std::string &reason,
                             double drift_pct)
{
    auto mr = manifest(key);
    if (!mr.ok())
        return mr.status();
    Manifest m = std::move(mr).value();
    ManifestEntry *e = m.find(version);
    if (!e)
        return errorStatus(ErrorCode::kNotFound, "no version ",
                           version, " of ", key.displayName());
    if (m.live_version == version)
        return errorStatus(ErrorCode::kInvalidArgument,
                           "cannot quarantine the live version ",
                           version, " of ", key.displayName(),
                           " (roll back first)");
    e->state = VersionState::kQuarantined;
    e->reason = reason;
    e->drift_pct = drift_pct;
    Status st = saveManifest(m);
    if (!st.ok())
        return st;
    reg()
        .counter("deploy.repo.quarantines", {{"model", key.model}})
        .add();
    return Status();
}

Status
EngineRepository::rollback(const ModelKey &key)
{
    auto mr = manifest(key);
    if (!mr.ok())
        return mr.status();
    Manifest m = std::move(mr).value();
    ManifestEntry *live = m.find(m.live_version);
    if (!live)
        return errorStatus(ErrorCode::kNotFound,
                           "no live version of ",
                           key.displayName(), " to roll back");
    ManifestEntry *parent = m.find(live->parent_version);
    if (!parent)
        return errorStatus(ErrorCode::kNotFound, "version ",
                           live->version, " of ",
                           key.displayName(),
                           " has no parent to roll back to");
    live->state = VersionState::kRolledBack;
    live->reason = "rolled_back";
    parent->state = VersionState::kPromoted;
    m.live_version = parent->version;
    Status st = saveManifest(m);
    if (!st.ok())
        return st;
    reg()
        .counter("deploy.repo.rollbacks", {{"model", key.model}})
        .add();
    reg()
        .gauge("deploy.repo.live_version", {{"model", key.model}})
        .set(static_cast<double>(m.live_version));
    return Status();
}

std::vector<ModelKey>
EngineRepository::list() const
{
    std::vector<std::pair<std::string, ModelKey>> found;
    std::error_code ec;
    fs::path dir = fs::path(root_) / "manifests";
    if (!fs::exists(dir, ec))
        return {};
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        if (entry.path().extension() != ".ertm")
            continue;
        auto bytes = readFile(entry.path().string());
        if (!bytes.ok())
            continue;
        auto m = Manifest::deserialize(*bytes);
        if (!m.ok()) {
            warn("EngineRepository: skipping unreadable manifest '",
                 entry.path().string(),
                 "': ", m.status().message());
            continue;
        }
        found.emplace_back(entry.path().filename().string(),
                           m->key);
    }
    std::sort(found.begin(), found.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::vector<ModelKey> keys;
    keys.reserve(found.size());
    for (auto &f : found)
        keys.push_back(std::move(f.second));
    return keys;
}

} // namespace edgert::deploy
