#include "deploy/rebuild_worker.hh"

#include <optional>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "core/builder.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace edgert::deploy {

namespace {

/** Built engine + report, produced in a pool slot. */
struct BuiltCandidate
{
    std::optional<core::Engine> engine;
    core::BuildReport report;
};

BuiltCandidate
buildOne(const RebuildJob &job)
{
    EDGERT_SPAN("deploy_rebuild", {{"model", job.model},
                                   {"build",
                                    std::to_string(job.build_id)}});
    nn::Network net = nn::buildZooModel(job.model, 1);
    core::BuilderConfig cfg;
    cfg.precision = job.precision;
    cfg.build_id = job.build_id;
    cfg.jobs = job.build_jobs;
    cfg.calibration_seed = job.calibration_seed;
    core::Builder builder(job.device, cfg);
    BuiltCandidate out;
    out.engine = builder.build(net, &out.report);
    return out;
}

} // namespace

RebuildWorker::RebuildWorker(EngineRepository &repo,
                             DriftGateConfig gate_cfg, int workers)
    : repo_(repo), gate_(std::move(gate_cfg)), workers_(workers)
{}

std::vector<RebuildOutcome>
RebuildWorker::run(const std::vector<RebuildJob> &jobs)
{
    auto &reg = obs::MetricRegistry::global();
    std::vector<BuiltCandidate> built(jobs.size());

    // Phase 1: build in parallel into disjoint slots. The builder
    // itself is deterministic for a pinned build_id regardless of
    // pool shape, but its metric *publication* order is not — so a
    // byte-deterministic caller (bench_deploy) runs with workers=1.
    if (workers_ > 1 && jobs.size() > 1) {
        ThreadPool pool(workers_);
        pool.parallelFor(jobs.size(), [&](std::size_t i) {
            built[i] = buildOne(jobs[i]);
        });
    } else {
        for (std::size_t i = 0; i < jobs.size(); i++)
            built[i] = buildOne(jobs[i]);
    }

    // Phase 2: commit serially in job order.
    std::vector<RebuildOutcome> outcomes;
    outcomes.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); i++) {
        RebuildOutcome out;
        out.job = jobs[i];
        const core::Engine &candidate = *built[i].engine;
        ModelKey key{candidate.modelName(), candidate.deviceName(),
                     candidate.precision()};
        reg.counter("deploy.rebuild.builds",
                    {{"model", key.model}})
            .add();

        // Cross-precision jobs judge the candidate against the
        // incumbent of another precision lineage (e.g. an INT8
        // build against the live FP16 engine); same-precision jobs
        // gate within their own lineage.
        ModelKey gate_key{key.model, key.device,
                          jobs[i].gate_against.value_or(
                              key.precision)};
        auto incumbent = repo_.loadLive(gate_key);
        auto version = repo_.put(
            candidate,
            BuildMeta::from(built[i].report, "rebuild-worker"));
        if (!version.ok()) {
            out.status = version.status();
            warn("RebuildWorker: cannot store ",
                 key.displayName(), " (build ", out.job.build_id,
                 "): ", out.status.message());
            outcomes.push_back(std::move(out));
            continue;
        }
        out.version = *version;

        if (!incumbent.ok()) {
            if (incumbent.status().code() != ErrorCode::kNotFound) {
                // Live version unreadable: keep the candidate as
                // an ungated kCandidate rather than promoting
                // blindly over an incumbent we cannot compare to.
                out.status = incumbent.status();
                warn("RebuildWorker: cannot load incumbent of ",
                     key.displayName(), ": ",
                     out.status.message());
                outcomes.push_back(std::move(out));
                continue;
            }
            // Bootstrap: nothing is live yet, promote directly.
            out.status = repo_.promote(key, out.version);
            out.promoted = out.status.ok();
            outcomes.push_back(std::move(out));
            continue;
        }

        out.gated = true;
        out.verdict = gate_.evaluate(*incumbent, candidate);
        if (out.verdict.accepted) {
            out.status = repo_.promote(key, out.version);
            out.promoted = out.status.ok();
            reg.counter("deploy.rebuild.promoted",
                        {{"model", key.model}})
                .add();
        } else {
            out.status = repo_.quarantine(
                key, out.version, out.verdict.reason,
                out.verdict.disagreement_pct);
            out.quarantined = out.status.ok();
            reg.counter("deploy.rebuild.quarantined",
                        {{"model", key.model},
                         {"reason", out.verdict.reason}})
                .add();
            inform("RebuildWorker: quarantined ", key.displayName(),
                 " v", out.version, ": ", out.verdict.detail);
        }
        outcomes.push_back(std::move(out));
    }
    return outcomes;
}

} // namespace edgert::deploy
