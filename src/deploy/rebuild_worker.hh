#ifndef EDGERT_DEPLOY_REBUILD_WORKER_HH
#define EDGERT_DEPLOY_REBUILD_WORKER_HH

/**
 * @file
 * RebuildWorker — background engine rebuilds feeding the repository.
 *
 * A deployment pipeline periodically rebuilds its engines (new
 * builder release, refreshed calibration data, changed target
 * clocks). The worker runs those builds on a common::ThreadPool,
 * stores each result in the EngineRepository, and pushes it through
 * the DriftGate against the key's live version: accepted candidates
 * are promoted, rejected ones quarantined with the gate's verdict.
 *
 * Determinism: builds run in parallel into disjoint slots, but all
 * repository commits (put / promote / quarantine) happen serially in
 * job order afterwards, so manifests — and the metric stream — are
 * identical regardless of worker count.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hh"
#include "deploy/drift_gate.hh"
#include "deploy/repository.hh"
#include "gpusim/device.hh"

namespace edgert::deploy {

/** One rebuild request. */
struct RebuildJob
{
    std::string model;          //!< zoo model name
    gpusim::DeviceSpec device;  //!< build target
    nn::Precision precision = nn::Precision::kFp16;
    std::uint64_t build_id = 0; //!< builder seed of this rebuild
    int build_jobs = 1;         //!< autotuner sweep workers

    /**
     * Precision lineage the candidate is gated against. Unset
     * (the default) gates against the candidate's own precision
     * key; set it to the *incumbent's* precision for a cross-
     * precision promotion (an INT8 candidate judged against the
     * live FP16 engine). The candidate is still stored and
     * promoted under its own precision key.
     */
    std::optional<nn::Precision> gate_against;

    /** Calibration-batch identity for INT8/mixed builds. */
    std::uint64_t calibration_seed = 0;
};

/** What happened to one job. */
struct RebuildOutcome
{
    RebuildJob job;
    int version = -1;     //!< assigned repository version (-1: none)
    bool gated = false;   //!< drift gate ran (an incumbent existed)
    bool promoted = false;
    bool quarantined = false;
    DriftVerdict verdict; //!< valid when `gated`
    Status status;        //!< first error, if the job failed
};

/**
 * Builds candidate engines and commits them through the gate.
 */
class RebuildWorker
{
  public:
    /**
     * @param repo     Destination repository (not owned).
     * @param gate_cfg Drift-gate thresholds.
     * @param workers  Pool size for the builds; <= 1 runs serially.
     */
    RebuildWorker(EngineRepository &repo,
                  DriftGateConfig gate_cfg = {}, int workers = 1);

    /** Run every job; outcomes are in job order. */
    std::vector<RebuildOutcome>
    run(const std::vector<RebuildJob> &jobs);

  private:
    EngineRepository &repo_;
    DriftGate gate_;
    int workers_;
};

} // namespace edgert::deploy

#endif // EDGERT_DEPLOY_REBUILD_WORKER_HH
