#include "deploy/hotswap.hh"

#include "common/logging.hh"
#include "core/builder.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"

namespace edgert::deploy {

namespace {

ModelKey
keyFor(const serve::ServeConfig &cfg,
       const serve::ModelConfig &mc,
       std::optional<nn::Precision> precision = {})
{
    // The repository tracks the lineage of the batch-1 plan on the
    // first serving device; the server rebuilds its batch ladder
    // from the same build_id, so the fingerprints line up. Each
    // serving precision is its own lineage.
    return ModelKey{mc.model, cfg.devices.front().name,
                    precision.value_or(mc.precision)};
}

} // namespace

HotSwapper::HotSwapper(EngineRepository &repo,
                       DriftGateConfig gate_cfg)
    : repo_(repo), gate_cfg_(std::move(gate_cfg))
{}

HotSwapPlan
HotSwapper::planSwaps(
    const serve::ServeConfig &cfg, double t_s,
    std::uint64_t rebuild_build_id, int workers,
    std::optional<nn::Precision> candidate_precision,
    std::uint64_t candidate_calibration_seed)
{
    if (cfg.devices.empty())
        fatal("HotSwapper: the serve config has no devices");

    HotSwapPlan plan;
    std::vector<RebuildJob> jobs;
    std::vector<std::size_t> job_model; // jobs[i] -> models index
    plan.outcomes.resize(cfg.models.size());

    for (std::size_t m = 0; m < cfg.models.size(); m++) {
        const serve::ModelConfig &mc = cfg.models[m];
        const std::string &model = mc.model;
        ModelKey key = keyFor(cfg, mc);
        RebuildJob job;
        job.model = model;
        job.device = cfg.devices.front();
        job.precision = candidate_precision.value_or(mc.precision);
        job.build_id = rebuild_build_id;
        job.build_jobs = cfg.build_jobs;
        job.gate_against = mc.precision;
        job.calibration_seed = candidate_precision
                                   ? candidate_calibration_seed
                                   : mc.calibration_seed;
        plan.outcomes[m].job = job;

        auto manifest = repo_.manifest(key);
        if (!manifest.ok() &&
            manifest.status().code() != ErrorCode::kNotFound) {
            // Corrupt manifest: never let a broken lifecycle
            // record take a healthy incumbent out of service.
            plan.outcomes[m].status = manifest.status();
            warn("HotSwapper: skipping swap of '", model,
                 "', manifest unreadable: ",
                 manifest.status().message());
            obs::MetricRegistry::global()
                .counter("deploy.swap.skipped",
                         {{"model", model},
                          {"reason", "manifest_unreadable"}})
                .add();
            continue;
        }
        if (!manifest.ok() || manifest->live_version < 0) {
            // Bootstrap the incumbent: store the engine the server
            // is about to serve (same build_id → same binary).
            nn::Network net = nn::buildZooModel(model, 1);
            core::BuilderConfig bc;
            bc.precision = mc.precision;
            bc.calibration_seed = mc.calibration_seed;
            bc.build_id = cfg.build_id;
            bc.jobs = cfg.build_jobs;
            core::Builder builder(cfg.devices.front(), bc);
            core::BuildReport report;
            core::Engine incumbent = builder.build(net, &report);
            auto version = repo_.put(
                incumbent, BuildMeta::from(report, "edgeserve"));
            if (!version.ok()) {
                plan.outcomes[m].status = version.status();
                warn("HotSwapper: cannot bootstrap incumbent of '",
                     model,
                     "': ", version.status().message());
                continue;
            }
            Status st = repo_.promote(key, *version);
            if (!st.ok()) {
                plan.outcomes[m].status = st;
                continue;
            }
        }
        job_model.push_back(m);
        jobs.push_back(std::move(job));
    }

    RebuildWorker worker(repo_, gate_cfg_, workers);
    std::vector<RebuildOutcome> outcomes = worker.run(jobs);
    for (std::size_t i = 0; i < outcomes.size(); i++) {
        std::size_t m = job_model[i];
        plan.outcomes[m] = std::move(outcomes[i]);
        if (plan.outcomes[m].promoted) {
            serve::SwapSpec spec;
            spec.model = cfg.models[m].model;
            spec.t_s = t_s;
            spec.candidate_build_id = rebuild_build_id;
            if (plan.outcomes[m].job.precision !=
                cfg.models[m].precision) {
                spec.precision = plan.outcomes[m].job.precision;
                spec.calibration_seed =
                    plan.outcomes[m].job.calibration_seed;
            }
            plan.swaps.push_back(std::move(spec));
        }
    }
    return plan;
}

serve::ServeReport
HotSwapper::runWithSwaps(const serve::ServeConfig &cfg,
                         const HotSwapPlan &plan)
{
    serve::ServeConfig run_cfg = cfg;
    run_cfg.swaps.insert(run_cfg.swaps.end(), plan.swaps.begin(),
                         plan.swaps.end());
    serve::ServeReport report = serve::runServer(run_cfg);

    // Reconcile: a swap the server rolled back at runtime (load
    // fault, canary latency regression) must not stay promoted in
    // the lineage.
    for (const auto &ms : report.models) {
        if (ms.swaps_rolled_back <= 0)
            continue;
        const serve::SwapSpec *planned = nullptr;
        for (const auto &s : plan.swaps)
            if (s.model == ms.model)
                planned = &s;
        if (!planned)
            continue;
        const serve::ModelConfig *mc = nullptr;
        for (const auto &c : cfg.models)
            if (c.model == ms.model)
                mc = &c;
        if (!mc)
            continue;
        // The candidate was promoted under its own precision key
        // (which differs from the serving key on a cross-precision
        // swap), so the rollback targets that lineage.
        ModelKey key = keyFor(cfg, *mc, planned->precision);
        Status st = repo_.rollback(key);
        if (!st.ok())
            warn("HotSwapper: cannot roll back lineage of '",
                 ms.model, "': ", st.message());
        else
            inform("HotSwapper: rolled back '", ms.model,
                   "' to its previous version (",
                   ms.swap_rollback_reason, ")");
    }
    return report;
}

} // namespace edgert::deploy
