#ifndef EDGERT_DEPLOY_DRIFT_GATE_HH
#define EDGERT_DEPLOY_DRIFT_GATE_HH

/**
 * @file
 * DriftGate — the promotion decision of the EdgeDeploy lifecycle.
 *
 * The paper's Finding 2 shows that rebuilding the *same* network
 * yields engines that disagree on 0.1–0.8% of top-1 predictions
 * (tactic re-timing changes the kernel selection, FP16 accumulation
 * order shifts, borderline argmax decisions flip), and Finding 6
 * shows the kernel mapping itself changes between builds. Both are
 * invisible to latency dashboards; a deployment pipeline that swaps
 * engines blindly silently changes model behaviour in production.
 *
 * The gate replays a deterministic canary batch through the
 * incumbent and the candidate (surrogate classifiers keyed by each
 * engine's tactic fingerprint — equal fingerprints agree everywhere
 * by construction) and compares the per-kernel invocation counts of
 * the two plans. A candidate whose top-1 disagreement or kernel
 * remap fraction exceeds the configured thresholds is rejected with
 * a machine-readable reason so the repository can quarantine it.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hh"

namespace edgert::deploy {

/** Tunables of the drift gate. */
struct DriftGateConfig
{
    /** Max tolerated top-1 disagreement on the canary batch (%).
     *  The paper band is 0.1–0.8%, so the default rejects the
     *  upper half of naturally occurring rebuild drift. */
    double max_disagreement_pct = 0.4;

    /**
     * Disagreement tolerance when the candidate runs at a
     * *different* precision than the incumbent (%). Quantization
     * legitimately flips far more borderline predictions than a
     * same-precision rebuild — an INT8 candidate judged against
     * the FP16 band would always be quarantined — so cross-
     * precision promotions get their own, wider band.
     */
    double cross_precision_disagreement_pct = 2.0;

    /**
     * Extra tolerance (%) added when both engines are quantized
     * but calibrated on different data: refreshed calibration
     * batches shift the scale tables and flip borderline
     * predictions — an F2-style nondeterminism source, not a
     * regression.
     */
    double calibration_variance_pct = 0.5;

    /** Canary batch shape: classes x per_class x |severities|
     *  corrupted images (corrupted inputs sit closer to decision
     *  boundaries, so drift surfaces with fewer images). */
    int canary_classes = 20;
    int canary_per_class = 10;
    std::vector<int> canary_severities = {1, 5};

    /** Max tolerated fraction of kernel names whose invocation
     *  count changed between the plans (%). 100 disables the
     *  check (the paper expects remaps; they are reported either
     *  way). */
    double max_kernel_remap_pct = 100.0;
};

/** One kernel whose invocation count differs between the plans. */
struct KernelDelta
{
    std::string kernel;
    std::int64_t incumbent_calls = 0;
    std::int64_t candidate_calls = 0;
};

/** The gate's decision and its evidence. */
struct DriftVerdict
{
    bool accepted = false;

    /** Machine-readable rejection reason; empty when accepted.
     *  One of: "drift_exceeds_threshold",
     *  "kernel_remap_exceeds_threshold", "model_mismatch". */
    std::string reason;

    /** Human-readable elaboration of `reason`. */
    std::string detail;

    /** True when the canary replay ran (equal fingerprints and
     *  identity-mismatch rejections skip it). */
    bool canary_ran = false;
    std::int64_t canary_size = 0;
    std::int64_t disagreements = 0;
    double disagreement_pct = 0.0;

    /** Share of kernel names with changed invocation counts (%). */
    double kernel_remap_pct = 0.0;
    std::vector<KernelDelta> kernel_deltas;

    /** The engines run at different precisions, so the canary was
     *  judged against the cross-precision band. */
    bool cross_precision = false;

    /** Disagreement threshold the verdict was judged against (%),
     *  after cross-precision and calibration-variance widening. */
    double applied_disagreement_pct = 0.0;

    /** Canonical JSON rendering (stable field order). */
    std::string toJson() const;
};

/** Replays the canary and renders the promote/quarantine verdict. */
class DriftGate
{
  public:
    explicit DriftGate(DriftGateConfig cfg = {});

    /** Compare `candidate` against the serving `incumbent`. */
    DriftVerdict evaluate(const core::Engine &incumbent,
                          const core::Engine &candidate) const;

    const DriftGateConfig &config() const { return cfg_; }

  private:
    DriftGateConfig cfg_;
};

} // namespace edgert::deploy

#endif // EDGERT_DEPLOY_DRIFT_GATE_HH
