#ifndef EDGERT_DEPLOY_COHORT_HH
#define EDGERT_DEPLOY_COHORT_HH

/**
 * @file
 * CohortPlanner — deterministic staged-rollout cohorts.
 *
 * A fleet rollout shifts a candidate build onto 1% of nodes, then
 * 10%, then 100%, watching the canary cohort between stages. The
 * planner fixes *which* nodes land in each stage: members are
 * ordered by a seeded hash of their id (so cohorts sample every
 * device pool instead of the first rack in id order) and a stage's
 * cohort is a prefix of that order. Prefixes make cohorts nested by
 * construction — a node canaried at 1% stays in the 10% and 100%
 * cohorts — and the seed makes the draw reproducible, so a rollout
 * replay quarantines exactly the nodes the original run did.
 */

#include <cstdint>
#include <vector>

namespace edgert::deploy {

/** Deterministic nested cohort assignment over a member set. */
class CohortPlanner
{
  public:
    /**
     * @param members Node ids eligible for the rollout (any order;
     *        duplicates are dropped).
     * @param seed    Cohort-draw seed.
     */
    CohortPlanner(const std::vector<int> &members,
                  std::uint64_t seed);

    /**
     * The cohort at `pct` percent (0 < pct <= 100): the first
     * ceil(pct% of members) nodes of the seeded order — never empty
     * for a non-empty member set — returned sorted by node id.
     */
    std::vector<int> cohort(double pct) const;

    /** Full seeded order (test / inspection hook). */
    const std::vector<int> &order() const { return order_; }

    std::size_t memberCount() const { return order_.size(); }

  private:
    std::vector<int> order_;
};

} // namespace edgert::deploy

#endif // EDGERT_DEPLOY_COHORT_HH
