#ifndef EDGERT_DEPLOY_REPOSITORY_HH
#define EDGERT_DEPLOY_REPOSITORY_HH

/**
 * @file
 * EngineRepository — a versioned, content-addressed on-disk store
 * of built engine plans, the persistence half of the EdgeDeploy
 * lifecycle (drift_gate.hh decides, this file remembers).
 *
 * Layout under the repository root:
 *
 *     blobs/<fingerprint:016x>.erte      serialized engine plans
 *     manifests/<model>@<device>@<precision>.ertm
 *
 * Blobs are Engine::serialize() output — already CRC-framed — and
 * are addressed by the engine's tactic fingerprint, so bit-identical
 * rebuilds share one blob. A manifest is the CRC-framed version
 * history of one (model, device, precision) key: every version
 * records its build metadata (builder seed, tactic fingerprint,
 * timing-cache accounting from core::BuildProvenance), its
 * lifecycle state, and the version it superseded — the lineage the
 * rollback path walks. Manifest writes go through a temp-file +
 * rename so a crashed writer can never leave a half-written
 * manifest behind; manifest *reads* are untrusted input and return
 * Status errors on any corruption, never a crash.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "core/builder.hh"
#include "core/engine.hh"

namespace edgert::deploy {

/** Identity of one manifest: what is served, where, at what
 *  precision. */
struct ModelKey
{
    std::string model;
    std::string device;
    nn::Precision precision = nn::Precision::kFp16;

    /** "model@device@precision" (filesystem-sanitized). */
    std::string displayName() const;

    bool operator==(const ModelKey &o) const
    {
        return model == o.model && device == o.device &&
               precision == o.precision;
    }
};

/** Lifecycle state of one stored engine version. */
enum class VersionState : std::uint8_t
{
    kCandidate = 0,   //!< stored, not yet gated
    kPromoted = 1,    //!< the live version
    kQuarantined = 2, //!< rejected by the drift gate
    kRetired = 3,     //!< superseded by a later promotion
    kRolledBack = 4,  //!< promoted, then reverted post-swap
};

/** Printable state name. */
const char *versionStateName(VersionState s);

/** One version's record in a manifest. */
struct ManifestEntry
{
    int version = 0;            //!< 1-based, monotonically increasing
    VersionState state = VersionState::kCandidate;
    std::uint64_t build_id = 0; //!< builder seed
    std::uint64_t fingerprint = 0; //!< tactic fingerprint (blob address)
    std::int64_t plan_bytes = 0;
    std::int64_t timing_measurements = 0;
    std::int64_t timing_cache_hits = 0;
    std::int64_t timing_shared = 0;
    std::string created_by;     //!< producer ("rebuild-worker", CLI)
    std::string reason;         //!< quarantine/rollback reason ("" none)
    double drift_pct = 0.0;     //!< gate-reported disagreement
    int parent_version = -1;    //!< version this one superseded
};

/** The version history of one ModelKey. */
struct Manifest
{
    ModelKey key;
    int live_version = -1; //!< -1: nothing promoted yet
    std::vector<ManifestEntry> entries;

    const ManifestEntry *find(int version) const;
    ManifestEntry *find(int version);
    const ManifestEntry *live() const { return find(live_version); }

    /** Serialize as a CRC-framed binary stream. */
    std::vector<std::uint8_t> serialize() const;

    /** Parse untrusted manifest bytes; corruption, truncation and
     *  out-of-domain values yield Status errors, never aborts. */
    static Result<Manifest>
    deserialize(const std::vector<std::uint8_t> &bytes);
};

/** Metadata recorded alongside a stored engine. */
struct BuildMeta
{
    core::BuildProvenance provenance;
    std::string created_by;

    static BuildMeta
    from(const core::BuildReport &report, std::string who)
    {
        return {report.provenance, std::move(who)};
    }
};

/**
 * The on-disk store. All mutating operations rewrite the affected
 * manifest atomically; blobs are immutable once written.
 */
class EngineRepository
{
  public:
    explicit EngineRepository(std::string root);

    const std::string &root() const { return root_; }

    /** Store an engine as the next version of its key (derived from
     *  the engine itself). Returns the assigned version number. */
    Result<int> put(const core::Engine &engine,
                    const BuildMeta &meta);

    /** The manifest of one key (kNotFound when absent). */
    Result<Manifest> manifest(const ModelKey &key) const;

    /** Load one stored version's engine plan. */
    Result<core::Engine> loadVersion(const ModelKey &key,
                                     int version) const;

    /** Load the live (promoted) version's engine plan. */
    Result<core::Engine> loadLive(const ModelKey &key) const;

    /** Make `version` live; the previous live version is retired
     *  and recorded as the new version's parent. */
    Status promote(const ModelKey &key, int version);

    /** Reject `version` with a machine-readable reason and the
     *  gate-reported disagreement. */
    Status quarantine(const ModelKey &key, int version,
                      const std::string &reason, double drift_pct);

    /** Revert the live version to its parent (post-swap rollback).
     *  Fails when there is no live version or no parent lineage. */
    Status rollback(const ModelKey &key);

    /** Every key with a manifest, sorted by file name. */
    std::vector<ModelKey> list() const;

    /** Absolute path of a key's manifest file. */
    std::string manifestPath(const ModelKey &key) const;

    /** Absolute path of a fingerprint's blob file. */
    std::string blobPath(std::uint64_t fingerprint) const;

  private:
    Status ensureDirs() const;
    Status saveManifest(const Manifest &m) const;

    std::string root_;
};

} // namespace edgert::deploy

#endif // EDGERT_DEPLOY_REPOSITORY_HH
