#ifndef EDGERT_DEPLOY_HOTSWAP_HH
#define EDGERT_DEPLOY_HOTSWAP_HH

/**
 * @file
 * HotSwapper — glue between the repository/gate lifecycle and the
 * live EdgeServe run.
 *
 * The server owns the actual swap mechanics (serve::SwapSpec: pause
 * the model while the candidate warms, drain in-flight incumbent
 * batches on their old contexts, admit new batches on the new
 * engine, roll back on canary latency regression — no request is
 * ever dropped). The HotSwapper owns the *decision* and the
 * *record*: it makes sure every served model has a promoted
 * incumbent in the repository, rebuilds candidates through the
 * DriftGate, schedules swaps only for candidates that passed, and
 * reconciles the manifests afterwards (a swap the server rolled
 * back rolls the repository lineage back too).
 */

#include <cstdint>
#include <vector>

#include "deploy/rebuild_worker.hh"
#include "deploy/repository.hh"
#include "serve/server.hh"

namespace edgert::deploy {

/** Gated swap schedule for one serve run. */
struct HotSwapPlan
{
    /** Swaps to splice into ServeConfig::swaps (accepted only). */
    std::vector<serve::SwapSpec> swaps;

    /** Per-model rebuild/gate outcome, ModelConfig order. */
    std::vector<RebuildOutcome> outcomes;
};

/**
 * Plans drift-gated hot-swaps and reconciles the repository with
 * what the server actually did.
 */
class HotSwapper
{
  public:
    /** @param repo Lifecycle store (not owned). */
    explicit HotSwapper(EngineRepository &repo,
                        DriftGateConfig gate_cfg = {});

    /**
     * Prepare a swap of every model in `cfg` to a rebuilt engine.
     *
     * Ensures each model has a promoted incumbent (bootstrapping
     * one at cfg.build_id when its manifest does not exist yet),
     * rebuilds a candidate at `rebuild_build_id` through the drift
     * gate, and emits a SwapSpec at `t_s` for each candidate the
     * gate promoted. A model whose manifest is corrupt is skipped —
     * the incumbent keeps serving and the error is recorded in its
     * outcome.
     *
     * @param workers Rebuild pool size; keep 1 for byte-identical
     *        metric streams.
     * @param candidate_precision When set, build every candidate at
     *        this precision instead of the model's serving
     *        precision — a *cross-precision* promotion: the
     *        candidate is gated against the incumbent's lineage
     *        (the gate's cross-precision band applies) and the
     *        emitted SwapSpec carries the precision so the server
     *        swaps the whole ladder.
     * @param candidate_calibration_seed Calibration-batch identity
     *        of cross-precision INT8/mixed candidates.
     */
    HotSwapPlan
    planSwaps(const serve::ServeConfig &cfg, double t_s,
              std::uint64_t rebuild_build_id, int workers = 1,
              std::optional<nn::Precision> candidate_precision = {},
              std::uint64_t candidate_calibration_seed = 0);

    /**
     * Run the server with the plan's swaps spliced in, then roll
     * the repository lineage back for every model whose swap the
     * server rolled back at runtime.
     */
    serve::ServeReport runWithSwaps(const serve::ServeConfig &cfg,
                                    const HotSwapPlan &plan);

  private:
    EngineRepository &repo_;
    DriftGateConfig gate_cfg_;
};

} // namespace edgert::deploy

#endif // EDGERT_DEPLOY_HOTSWAP_HH
