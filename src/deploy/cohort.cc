#include "deploy/cohort.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace edgert::deploy {

CohortPlanner::CohortPlanner(const std::vector<int> &members,
                             std::uint64_t seed)
{
    order_ = members;
    std::sort(order_.begin(), order_.end());
    order_.erase(std::unique(order_.begin(), order_.end()),
                 order_.end());
    std::stable_sort(
        order_.begin(), order_.end(), [seed](int a, int b) {
            std::uint64_t ha = mix64(hashCombine(
                seed, static_cast<std::uint64_t>(a)));
            std::uint64_t hb = mix64(hashCombine(
                seed, static_cast<std::uint64_t>(b)));
            if (ha != hb)
                return ha < hb;
            return a < b;
        });
}

std::vector<int>
CohortPlanner::cohort(double pct) const
{
    if (pct <= 0.0 || pct > 100.0)
        fatal("CohortPlanner: stage pct must be in (0, 100] (got ",
              pct, ")");
    if (order_.empty())
        return {};
    auto take = static_cast<std::size_t>(std::ceil(
        pct / 100.0 * static_cast<double>(order_.size())));
    take = std::clamp<std::size_t>(take, 1, order_.size());
    std::vector<int> out(order_.begin(),
                         order_.begin() +
                             static_cast<std::ptrdiff_t>(take));
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace edgert::deploy
