#include "deploy/drift_gate.hh"

#include <map>
#include <sstream>

#include "common/strutil.hh"
#include "data/datasets.hh"
#include "data/surrogate.hh"
#include "obs/metrics.hh"

namespace edgert::deploy {

namespace {

/** Invocations per kernel name over one inference of `engine`. */
std::map<std::string, std::int64_t>
kernelCalls(const core::Engine &engine)
{
    std::map<std::string, std::int64_t> calls;
    for (const auto &step : engine.steps())
        for (const auto &k : step.kernels)
            calls[k.name]++;
    return calls;
}

void
jsonStr(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

} // namespace

std::string
DriftVerdict::toJson() const
{
    std::ostringstream os;
    os << "{\"accepted\": " << (accepted ? "true" : "false")
       << ", \"reason\": ";
    jsonStr(os, reason);
    os << ", \"detail\": ";
    jsonStr(os, detail);
    os << ", \"canary_ran\": " << (canary_ran ? "true" : "false")
       << ", \"canary_size\": " << canary_size
       << ", \"disagreements\": " << disagreements
       << ", \"disagreement_pct\": "
       << formatDouble(disagreement_pct, 4)
       << ", \"kernel_remap_pct\": "
       << formatDouble(kernel_remap_pct, 2)
       << ", \"kernel_deltas\": [";
    for (std::size_t i = 0; i < kernel_deltas.size(); i++) {
        const KernelDelta &d = kernel_deltas[i];
        if (i)
            os << ", ";
        os << "{\"kernel\": ";
        jsonStr(os, d.kernel);
        os << ", \"incumbent_calls\": " << d.incumbent_calls
           << ", \"candidate_calls\": " << d.candidate_calls << "}";
    }
    os << "], \"cross_precision\": "
       << (cross_precision ? "true" : "false")
       << ", \"applied_disagreement_pct\": "
       << formatDouble(applied_disagreement_pct, 4) << "}";
    return os.str();
}

DriftGate::DriftGate(DriftGateConfig cfg)
    : cfg_(std::move(cfg))
{}

DriftVerdict
DriftGate::evaluate(const core::Engine &incumbent,
                    const core::Engine &candidate) const
{
    auto &reg = obs::MetricRegistry::global();
    obs::Labels labels{{"model", incumbent.modelName()}};
    reg.counter("deploy.gate.evaluations", labels).add();

    DriftVerdict v;
    if (incumbent.modelName() != candidate.modelName()) {
        v.reason = "model_mismatch";
        v.detail = "incumbent serves '" + incumbent.modelName() +
                   "', candidate was built for '" +
                   candidate.modelName() + "'";
        reg.counter("deploy.gate.rejected",
                    {{"model", incumbent.modelName()},
                     {"reason", v.reason}})
            .add();
        return v;
    }
    // A candidate at a different precision (an INT8 rebuild of the
    // FP16 incumbent, say) is a supported promotion path, not an
    // identity error: the canary still runs, judged against the
    // wider cross-precision band instead of the rebuild-drift band.
    v.cross_precision =
        incumbent.precision() != candidate.precision();
    v.applied_disagreement_pct =
        v.cross_precision ? cfg_.cross_precision_disagreement_pct
                          : cfg_.max_disagreement_pct;
    // Both quantized but calibrated on different data: the scale
    // tables differ, which flips extra borderline predictions —
    // calibration variance, not model drift.
    if (incumbent.calibrationFingerprint() != 0 &&
        candidate.calibrationFingerprint() != 0 &&
        incumbent.calibrationFingerprint() !=
            candidate.calibrationFingerprint())
        v.applied_disagreement_pct += cfg_.calibration_variance_pct;

    // Kernel mapping delta (Finding 6): which kernels the plans
    // invoke, and how often, regardless of prediction agreement.
    auto inc_calls = kernelCalls(incumbent);
    auto cand_calls = kernelCalls(candidate);
    std::map<std::string, std::int64_t> all = inc_calls;
    for (const auto &[name, n] : cand_calls)
        all.emplace(name, 0);
    for (const auto &[name, unused] : all) {
        std::int64_t a =
            inc_calls.count(name) ? inc_calls.at(name) : 0;
        std::int64_t b =
            cand_calls.count(name) ? cand_calls.at(name) : 0;
        if (a != b)
            v.kernel_deltas.push_back({name, a, b});
    }
    if (!all.empty())
        v.kernel_remap_pct = 100.0 *
                             static_cast<double>(
                                 v.kernel_deltas.size()) /
                             static_cast<double>(all.size());

    if (incumbent.fingerprint() == candidate.fingerprint()) {
        // Bit-identical binaries compute bit-identical outputs;
        // the canary cannot disagree, so skip it.
        v.accepted = true;
        reg.counter("deploy.gate.accepted", labels).add();
        return v;
    }

    // Canary replay (Finding 2): top-1 disagreement between the two
    // builds on a deterministic corrupted-image batch.
    data::AdversarialDataset canary(cfg_.canary_classes,
                                    cfg_.canary_per_class,
                                    cfg_.canary_severities);
    auto inc_clf = data::SurrogateClassifier::forEngine(
        incumbent.modelName(), incumbent.fingerprint(),
        data::QuantSpec{incumbent.int8ComputeFraction(),
                        incumbent.calibrationFingerprint()});
    auto cand_clf = data::SurrogateClassifier::forEngine(
        candidate.modelName(), candidate.fingerprint(),
        data::QuantSpec{candidate.int8ComputeFraction(),
                        candidate.calibrationFingerprint()});
    v.canary_ran = true;
    v.canary_size = static_cast<std::int64_t>(canary.size());
    for (std::size_t i = 0; i < canary.size(); i++) {
        data::CorruptImageRef img = canary.at(i);
        if (inc_clf.predict(img) != cand_clf.predict(img))
            v.disagreements++;
    }
    if (v.canary_size > 0)
        v.disagreement_pct = 100.0 *
                             static_cast<double>(v.disagreements) /
                             static_cast<double>(v.canary_size);
    reg.histogram("deploy.gate.disagreement_pct", labels)
        .record(v.disagreement_pct);

    if (v.disagreement_pct > v.applied_disagreement_pct) {
        v.reason = "drift_exceeds_threshold";
        v.detail = "canary disagreement " +
                   formatDouble(v.disagreement_pct, 3) +
                   "% exceeds the " +
                   formatDouble(v.applied_disagreement_pct, 3) +
                   (v.cross_precision ? "% cross-precision gate ("
                                      : "% gate (") +
                   std::to_string(v.disagreements) + " of " +
                   std::to_string(v.canary_size) + " images)";
    } else if (v.kernel_remap_pct > cfg_.max_kernel_remap_pct) {
        v.reason = "kernel_remap_exceeds_threshold";
        v.detail = "kernel remap " +
                   formatDouble(v.kernel_remap_pct, 2) +
                   "% exceeds the " +
                   formatDouble(cfg_.max_kernel_remap_pct, 2) +
                   "% gate (" +
                   std::to_string(v.kernel_deltas.size()) +
                   " kernels changed invocation counts)";
    } else {
        v.accepted = true;
    }

    if (v.accepted) {
        reg.counter("deploy.gate.accepted", labels).add();
    } else {
        reg.counter("deploy.gate.rejected",
                    {{"model", incumbent.modelName()},
                     {"reason", v.reason}})
            .add();
    }
    return v;
}

} // namespace edgert::deploy
