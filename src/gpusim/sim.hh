#ifndef EDGERT_GPUSIM_SIM_HH
#define EDGERT_GPUSIM_SIM_HH

/**
 * @file
 * Discrete-event simulator of one embedded GPU.
 *
 * Execution model:
 *  - Any number of streams; ops within a stream are FIFO.
 *  - Kernels from different streams execute concurrently, sharing
 *    SMs by max-min fair water-filling (a kernel can never hold more
 *    SMs than it has blocks) and sharing DRAM bandwidth the same
 *    way. Rates are piecewise constant between events.
 *  - One copy engine serves all memcpys FIFO (Jetson-style iGPU DMA).
 *  - A kernel launch pays a serial CPU-side latency during which it
 *    occupies no SMs; an attached profiler adds further per-op
 *    overhead (this is how Table VIII (with nvprof) and Table IX
 *    (without) differ).
 *
 * The simulator is deterministic and never reads wall-clock time.
 *
 * Hot-path layout (the SimCore overhaul): ops live in a recycled
 * IndexPool and stream FIFOs are intrusive index lists through it;
 * pending host delays sit in a binary-heap event calendar keyed on
 * (completion time, insertion seq); the copy backlog is a ring; and
 * share recomputation is skipped while the executing-kernel set is
 * unchanged (the water-fill is a pure function of that set, so the
 * skip is bit-exact). All of this changes per-event cost only —
 * the event sequence, every timestamp and every metric value are
 * bit-identical to the pre-overhaul simulator.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "gpusim/device.hh"
#include "gpusim/kernel.hh"
#include "obs/metrics.hh"

namespace edgert::gpusim {

/** Identifier of a recorded stream event (cudaEvent analogue). */
using EventId = std::int64_t;

/** Categories of simulated operations. */
enum class OpKind {
    kKernel,
    kMemcpyH2D,
    kMemcpyD2H,
    kMarker,
    kDelay,
    kWaitEvent,
};

/**
 * Completed-op trace retention policy. Long serving runs complete
 * hundreds of thousands of ops; kFull keeps every record (profiler
 * fidelity), kSampled keeps 1 in N (bounded memory, still enough
 * for timeline spot checks), kOff keeps none.
 */
enum class TraceMode { kFull, kSampled, kOff };

/** Completed-operation trace entry (the profiler's raw material). */
struct OpRecord
{
    OpKind kind = OpKind::kKernel;
    std::string name;
    int stream = 0;
    double start_s = 0.0;
    double end_s = 0.0;
    std::uint64_t bytes = 0;  //!< memcpy payload
    KernelDesc kernel;        //!< valid when kind == kKernel

    double durationSeconds() const { return end_s - start_s; }
};

/** Aggregated resource-usage statistics since the last reset. */
struct UtilStats
{
    double window_s = 0.0;        //!< simulated span of the window
    double sm_busy_integral = 0.0; //!< SM-seconds of allocation
    double gpu_busy_s = 0.0;      //!< time with >=1 kernel executing
    double copy_busy_s = 0.0;     //!< copy-engine busy time
    double dram_bytes = 0.0;      //!< kernel DRAM traffic in window

    /** tegrastats-style GPU load: SM-weighted busy fraction (%). */
    double smUtilizationPct(int sm_count) const;

    /** Fraction of time any kernel was resident (%). */
    double busyPct() const;
};

/** Self-measurement counters of the simulator itself. */
struct SimStats
{
    std::uint64_t events = 0;        //!< simulation steps executed
    std::uint64_t ops_enqueued = 0;  //!< ops accepted (incl. markers)
    std::uint64_t ops_completed = 0; //!< non-marker ops finished
    std::uint64_t trace_records = 0; //!< records actually retained
    std::size_t arena_bytes = 0;     //!< pool/calendar/trace footprint
};

/**
 * The GPU discrete-event simulator.
 */
class GpuSim
{
  public:
    /**
     * @param spec     Device to simulate.
     * @param registry Registry the per-device instrumentation
     *        (gpusim.* counters/histograms) records into; defaults
     *        to the process-wide registry. A fleet simulating many
     *        same-named devices gives each node a private registry
     *        so their series do not pile up under one label set,
     *        then folds them into one snapshot with
     *        obs::MetricRegistry::mergeFrom.
     */
    explicit GpuSim(const DeviceSpec &spec,
                    obs::MetricRegistry *registry = nullptr);

    GpuSim(const GpuSim &) = delete;
    GpuSim &operator=(const GpuSim &) = delete;

    const DeviceSpec &spec() const { return spec_; }

    /**
     * Create a new stream; stream 0 exists by default.
     * @param priority_weight Relative share weight for SM and
     *        bandwidth arbitration (cudaStreamCreateWithPriority
     *        analogue); 1.0 = default priority, larger = favored.
     */
    int createStream(double priority_weight = 1.0);

    /** Enqueue a kernel launch on a stream. */
    void launchKernel(int stream, const KernelDesc &kernel);
    void launchKernel(int stream, KernelDesc &&kernel);

    /**
     * Enqueue a host-to-device copy.
     * @param transfers Number of cudaMemcpy calls this represents.
     * @param pinned    Copy from a pre-pinned ring buffer (camera
     *                  pipelines); pays ~1/10 the per-transfer
     *                  driver overhead of pageable weight uploads.
     */
    void memcpyH2D(int stream, std::uint64_t bytes, int transfers,
                   std::string tag, bool pinned = false);

    /** Enqueue a device-to-host copy. */
    void memcpyD2H(int stream, std::uint64_t bytes, int transfers,
                   std::string tag, bool pinned = false);

    /** Record an event that completes when the stream drains to it. */
    EventId recordEvent(int stream);

    /**
     * Hold a stream until a recorded event completes
     * (cudaStreamWaitEvent analogue). If the event has already
     * completed when the stream drains to the wait, it costs
     * nothing; otherwise the stream parks until the owning stream's
     * marker retires, then resumes at that instant. This is the
     * cross-stream dependency primitive that lets an upload stream,
     * a compute stream and a download stream pipeline stages of
     * consecutive frames. Waiting on an event that is never
     * recorded ahead of run() is a deadlock (fatal).
     */
    void waitEvent(int stream, EventId event);

    /**
     * Insert a host-side think-time gap into a stream (models the
     * CPU work between frames of an inference loop: sync, pre/post
     * processing, next-frame enqueue). Occupies no GPU resources.
     */
    void hostDelay(int stream, double seconds);

    /**
     * Hold a stream until the given *absolute* simulated time
     * (cudaStreamWaitEvent-on-a-timer analogue). The op completes at
     * max(seconds, time the stream reaches it), so a serving
     * schedule can pin "dispatch at t" release times: work enqueued
     * behind it never starts early, and a stream still busy past t
     * simply continues back-to-back. Occupies no GPU resources.
     */
    void delayUntil(int stream, double seconds);

    /** Run the simulation until every queue is empty. */
    void run();

    /** Run until the given event has completed (fatal on deadlock). */
    void runUntilEvent(EventId id);

    /** Current simulated time in seconds. */
    double nowSeconds() const { return now_; }

    /** Completion time of a recorded event; fatal if still pending. */
    double eventSeconds(EventId id) const;

    /**
     * Extra per-operation overhead while a profiler is attached
     * (0 = profiler detached).
     */
    void setProfilingOverheadUs(double us) { profiling_us_ = us; }
    double profilingOverheadUs() const { return profiling_us_; }

    /**
     * Enable system-noise jitter: every op's duration is scaled by
     * a deterministic, seeded log-ish factor of the given relative
     * stddev (models DVFS residue, OS scheduling and DRAM refresh —
     * the source of the run-to-run stddev the paper reports).
     */
    void setTimingJitter(double rel_std, std::uint64_t seed);

    /** Completed-op trace since the last clearTrace(). */
    const std::vector<OpRecord> &trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

    /**
     * Trace retention policy (default kFull, the historical
     * behavior). In kSampled mode every Nth completed op is kept;
     * timing of the simulation itself is unaffected — only what the
     * profiler layer can see afterwards changes.
     */
    void setTraceMode(TraceMode mode, int sample_every = 16);
    TraceMode traceMode() const { return trace_mode_; }
    int traceSampleEvery() const { return trace_sample_; }

    /** Pre-size the trace for an expected number of records. run()
     *  also reserves automatically from the enqueued-op backlog. */
    void reserveTrace(std::size_t records);

    /** Completed non-marker ops, including ones the trace mode
     *  dropped (the profiler footer's "of T ops" denominator). */
    std::uint64_t opsCompleted() const { return ops_completed_; }

    /**
     * Defer histogram metric records (kernel stall / wave-waste)
     * into an internal buffer instead of the global registry; a
     * later commitMetrics() replays them in completion order.
     * Counters stay immediate — they are atomic and their final
     * value is order-independent. This is what lets independent
     * devices simulate on worker threads while the registry
     * snapshot stays bit-identical to a serial run: each device
     * buffers during run() and the caller commits in device order.
     */
    void setDeferMetrics(bool on) { defer_metrics_ = on; }

    /** Replay deferred histogram records into the registry. */
    void commitMetrics();

    /** Reset the utilization window to start at the current time. */
    void resetStats();

    /** Utilization statistics for the current window. */
    UtilStats stats() const;

    /** Simulator self-measurement (cumulative). */
    SimStats simStats() const;

  private:
    struct Op
    {
        OpKind kind = OpKind::kKernel;
        KernelDesc kernel;
        std::uint64_t bytes = 0;
        int transfers = 0;
        bool pinned = false;
        std::string tag;
        EventId event = -1;
        double delay_s = 0.0;
        bool delay_until = false; //!< delay_s is an absolute time
        std::int32_t next = -1;   //!< intrusive stream-FIFO link
    };

    struct Stream
    {
        std::int32_t head = -1; //!< op-pool index FIFO
        std::int32_t tail = -1;
        bool busy = false;  //!< head op dispatched and in flight
        bool in_ready = false; //!< queued in ready_
        double weight = 1.0; //!< arbitration priority weight
    };

    struct ActiveKernel
    {
        std::int32_t op_idx = -1;
        std::int32_t stream = 0;
        double start_s = 0.0;
        double launch_remaining_s = 0.0; //!< serial pre-exec phase
        double frac_done = 0.0;          //!< progress of exec phase
        double exec_duration_s = 0.0;    //!< full exec time @ alloc
        double alloc_sms = 0.0;
        double wave_util = 1.0;          //!< avg fraction of alloc
                                         //!< SMs active (tail waves)
        double issue_act = 1.0;          //!< compute-active fraction
                                         //!< (memory stalls excluded)
        double jitter = 1.0;             //!< system-noise multiplier
        bool in_exec = false;

        // Timing invariants cached at admission; every value is the
        // exact double the old per-step recomputation produced.
        bool has_flops = false;
        bool has_dram = false;
        std::int64_t grid_blocks = 0;
        double grid_d = 0.0;        //!< (double)grid_blocks
        double maxb_d = 0.0;        //!< (double)max_blocks_per_sm
        double flops_d = 0.0;
        double per_sm_flops = 0.0;  //!< effective per-SM FLOP rate
        double sm_cap = 0.0;        //!< min(sm_count, grid_blocks)
        double dram_d = 0.0;
        double mem_s = 0.0;         //!< kernelMemSeconds, solo
    };

    struct ActiveCopy
    {
        std::int32_t op_idx = -1;
        std::int32_t stream = 0;
        double start_s = 0.0;
        double end_s = 0.0;
        bool valid = false;
    };

    struct CopyEntry
    {
        std::int32_t op_idx = -1;
        std::int32_t stream = 0;
    };

    /** A stream parked on a not-yet-completed event. */
    struct EventWaiter
    {
        EventId event = -1;
        std::int32_t op_idx = -1;
        std::int32_t stream = 0;
        double start_s = 0.0;
    };

    /** Event-calendar entry of one pending host delay. */
    struct DelayEntry
    {
        double end_s = 0.0;
        std::uint64_t seq = 0; //!< insertion order (FIFO tie-break)
        std::int32_t op_idx = -1;
        std::int32_t stream = 0;
        double start_s = 0.0;
    };

    /** Min-heap order on (end_s, seq). */
    struct DelayAfter
    {
        bool operator()(const DelayEntry &a,
                        const DelayEntry &b) const
        {
            if (a.end_s != b.end_s)
                return a.end_s > b.end_s;
            return a.seq > b.seq;
        }
    };

    /** One simulation step; returns false when fully idle. */
    bool step();

    std::int32_t acquireOp(OpKind kind);
    void pushOp(int stream, std::int32_t op_idx);
    void markReady(std::int32_t stream);
    void admitReady();
    void wakeWaiters(EventId id);
    void recomputeShares();
    void waterFillInto(const std::vector<double> &caps,
                       double capacity,
                       const std::vector<double> &weights,
                       std::vector<double> &grant);
    double jitterFactor();
    double nextEventDt() const;
    void advance(double dt);
    void completeFinished();
    void finishOp(std::int32_t op_idx, std::int32_t stream,
                  double start_s);
    void startCopyIfIdle();

    DeviceSpec spec_;
    double sm_count_d_ = 0.0;   //!< (double)spec_.sm_count
    double eff_dram_bps_ = 0.0; //!< spec_.effDramBps()
    double now_ = 0.0;
    std::vector<Stream> streams_;
    IndexPool<Op> ops_;
    std::vector<std::int32_t> ready_; //!< streams with admittable ops
    std::vector<ActiveKernel> active_;
    std::vector<DelayEntry> delay_heap_; //!< calendar (see DelayAfter)
    std::uint64_t delay_seq_ = 0;
    ActiveCopy copy_;
    RingBuffer<CopyEntry> copy_ring_;
    std::vector<OpRecord> trace_;
    std::vector<double> event_times_;
    std::vector<EventWaiter> wait_list_; //!< parked cross-stream waits
    double profiling_us_ = 0.0;
    double jitter_std_ = 0.0;
    std::uint64_t jitter_state_ = 0;
    bool shares_dirty_ = false; //!< exec set changed since last fill

    TraceMode trace_mode_ = TraceMode::kFull;
    int trace_sample_ = 16;

    bool defer_metrics_ = false;
    std::vector<double> deferred_stall_us_;
    std::vector<double> deferred_waste_pct_;

    // Self-measurement.
    std::uint64_t events_ = 0;
    std::uint64_t ops_enqueued_ = 0;
    std::uint64_t ops_completed_ = 0;
    std::uint64_t trace_records_ = 0;

    // Recompute/water-fill scratch (steady-state: zero allocation).
    std::vector<std::size_t> scratch_exec_;
    std::vector<double> scratch_caps_;
    std::vector<double> scratch_prio_;
    std::vector<double> scratch_tcomp_;
    std::vector<double> scratch_wave_;
    std::vector<double> scratch_bwcaps_;
    std::vector<double> scratch_sm_grant_;
    std::vector<double> scratch_bw_grant_;
    std::vector<std::size_t> wf_open_;
    std::vector<std::size_t> wf_next_;
    std::vector<std::size_t> wf_still_;
    std::vector<DelayEntry> scratch_expired_;
    std::vector<std::int32_t> scratch_ready_;

    // Utilization window accumulators.
    double win_start_ = 0.0;
    double sm_busy_integral_ = 0.0;
    double gpu_busy_s_ = 0.0;
    double copy_busy_s_ = 0.0;
    double dram_bytes_win_ = 0.0;

    // Device metrics, labeled {device=<name>} and recorded in
    // simulation order (deterministic). Handles are created once in
    // the constructor; recording is lock-cheap.
    obs::Counter m_kernel_launches_;
    obs::Counter m_memcpy_bytes_h2d_;
    obs::Counter m_memcpy_bytes_d2h_;
    obs::Counter m_memcpy_chunks_h2d_;
    obs::Counter m_memcpy_chunks_d2h_;
    obs::Histogram m_kernel_stall_us_;    //!< DRAM-contention stalls
    obs::Histogram m_wave_waste_pct_;     //!< wave-quantization waste
};

/**
 * Publish one simulator's self-measurement as gauges under
 * @p labels: `sim.events`, `sim.arena.bytes`, `sim.simulated_seconds`
 * and `sim.wall_seconds` (the host time @p wall_seconds the caller
 * measured around run()). Callers gate this — the gauges carry
 * wall-clock and so are excluded from byte-reproducible reports.
 */
void publishSimMetrics(const GpuSim &sim, const obs::Labels &labels,
                       double wall_seconds);

} // namespace edgert::gpusim

#endif // EDGERT_GPUSIM_SIM_HH
