#ifndef EDGERT_GPUSIM_SIM_HH
#define EDGERT_GPUSIM_SIM_HH

/**
 * @file
 * Discrete-event simulator of one embedded GPU.
 *
 * Execution model:
 *  - Any number of streams; ops within a stream are FIFO.
 *  - Kernels from different streams execute concurrently, sharing
 *    SMs by max-min fair water-filling (a kernel can never hold more
 *    SMs than it has blocks) and sharing DRAM bandwidth the same
 *    way. Rates are piecewise constant between events.
 *  - One copy engine serves all memcpys FIFO (Jetson-style iGPU DMA).
 *  - A kernel launch pays a serial CPU-side latency during which it
 *    occupies no SMs; an attached profiler adds further per-op
 *    overhead (this is how Table VIII (with nvprof) and Table IX
 *    (without) differ).
 *
 * The simulator is deterministic and never reads wall-clock time.
 */

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "gpusim/device.hh"
#include "gpusim/kernel.hh"
#include "obs/metrics.hh"

namespace edgert::gpusim {

/** Identifier of a recorded stream event (cudaEvent analogue). */
using EventId = std::int64_t;

/** Categories of simulated operations. */
enum class OpKind { kKernel, kMemcpyH2D, kMemcpyD2H, kMarker, kDelay };

/** Completed-operation trace entry (the profiler's raw material). */
struct OpRecord
{
    OpKind kind = OpKind::kKernel;
    std::string name;
    int stream = 0;
    double start_s = 0.0;
    double end_s = 0.0;
    std::uint64_t bytes = 0;  //!< memcpy payload
    KernelDesc kernel;        //!< valid when kind == kKernel

    double durationSeconds() const { return end_s - start_s; }
};

/** Aggregated resource-usage statistics since the last reset. */
struct UtilStats
{
    double window_s = 0.0;        //!< simulated span of the window
    double sm_busy_integral = 0.0; //!< SM-seconds of allocation
    double gpu_busy_s = 0.0;      //!< time with >=1 kernel executing
    double copy_busy_s = 0.0;     //!< copy-engine busy time
    double dram_bytes = 0.0;      //!< kernel DRAM traffic in window

    /** tegrastats-style GPU load: SM-weighted busy fraction (%). */
    double smUtilizationPct(int sm_count) const;

    /** Fraction of time any kernel was resident (%). */
    double busyPct() const;
};

/**
 * The GPU discrete-event simulator.
 */
class GpuSim
{
  public:
    explicit GpuSim(const DeviceSpec &spec);

    const DeviceSpec &spec() const { return spec_; }

    /**
     * Create a new stream; stream 0 exists by default.
     * @param priority_weight Relative share weight for SM and
     *        bandwidth arbitration (cudaStreamCreateWithPriority
     *        analogue); 1.0 = default priority, larger = favored.
     */
    int createStream(double priority_weight = 1.0);

    /** Enqueue a kernel launch on a stream. */
    void launchKernel(int stream, KernelDesc kernel);

    /**
     * Enqueue a host-to-device copy.
     * @param transfers Number of cudaMemcpy calls this represents.
     * @param pinned    Copy from a pre-pinned ring buffer (camera
     *                  pipelines); pays ~1/10 the per-transfer
     *                  driver overhead of pageable weight uploads.
     */
    void memcpyH2D(int stream, std::uint64_t bytes, int transfers,
                   std::string tag, bool pinned = false);

    /** Enqueue a device-to-host copy. */
    void memcpyD2H(int stream, std::uint64_t bytes, int transfers,
                   std::string tag, bool pinned = false);

    /** Record an event that completes when the stream drains to it. */
    EventId recordEvent(int stream);

    /**
     * Insert a host-side think-time gap into a stream (models the
     * CPU work between frames of an inference loop: sync, pre/post
     * processing, next-frame enqueue). Occupies no GPU resources.
     */
    void hostDelay(int stream, double seconds);

    /**
     * Hold a stream until the given *absolute* simulated time
     * (cudaStreamWaitEvent-on-a-timer analogue). The op completes at
     * max(seconds, time the stream reaches it), so a serving
     * schedule can pin "dispatch at t" release times: work enqueued
     * behind it never starts early, and a stream still busy past t
     * simply continues back-to-back. Occupies no GPU resources.
     */
    void delayUntil(int stream, double seconds);

    /** Run the simulation until every queue is empty. */
    void run();

    /** Run until the given event has completed (fatal on deadlock). */
    void runUntilEvent(EventId id);

    /** Current simulated time in seconds. */
    double nowSeconds() const { return now_; }

    /** Completion time of a recorded event; fatal if still pending. */
    double eventSeconds(EventId id) const;

    /**
     * Extra per-operation overhead while a profiler is attached
     * (0 = profiler detached).
     */
    void setProfilingOverheadUs(double us) { profiling_us_ = us; }
    double profilingOverheadUs() const { return profiling_us_; }

    /**
     * Enable system-noise jitter: every op's duration is scaled by
     * a deterministic, seeded log-ish factor of the given relative
     * stddev (models DVFS residue, OS scheduling and DRAM refresh —
     * the source of the run-to-run stddev the paper reports).
     */
    void setTimingJitter(double rel_std, std::uint64_t seed);

    /** Completed-op trace since the last clearTrace(). */
    const std::vector<OpRecord> &trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

    /** Reset the utilization window to start at the current time. */
    void resetStats();

    /** Utilization statistics for the current window. */
    UtilStats stats() const;

  private:
    struct Op
    {
        OpKind kind = OpKind::kKernel;
        KernelDesc kernel;
        std::uint64_t bytes = 0;
        int transfers = 0;
        bool pinned = false;
        std::string tag;
        EventId event = -1;
        double delay_s = 0.0;
        bool delay_until = false; //!< delay_s is an absolute time
    };

    struct Stream
    {
        std::deque<Op> queue;
        bool busy = false; //!< head op dispatched and in flight
        double weight = 1.0; //!< arbitration priority weight
    };

    struct ActiveKernel
    {
        Op op;
        int stream = 0;
        double start_s = 0.0;
        double launch_remaining_s = 0.0; //!< serial pre-exec phase
        double frac_done = 0.0;          //!< progress of exec phase
        double exec_duration_s = 0.0;    //!< full exec time @ alloc
        double alloc_sms = 0.0;
        double wave_util = 1.0;          //!< avg fraction of alloc
                                         //!< SMs active (tail waves)
        double issue_act = 1.0;          //!< compute-active fraction
                                         //!< (memory stalls excluded)
        double jitter = 1.0;             //!< system-noise multiplier
        bool in_exec = false;
    };

    struct ActiveCopy
    {
        Op op;
        int stream = 0;
        double start_s = 0.0;
        double end_s = 0.0;
        bool valid = false;
    };

    struct ActiveDelay
    {
        Op op;
        int stream = 0;
        double start_s = 0.0;
        double end_s = 0.0;
    };

    /** One simulation step; returns false when fully idle. */
    bool step();

    void admitReady();
    void recomputeShares();
    double jitterFactor();
    double nextEventDt() const;
    void advance(double dt);
    void completeFinished();
    void finishOp(const Op &op, int stream, double start_s);
    void startCopyIfIdle();

    DeviceSpec spec_;
    double now_ = 0.0;
    std::vector<Stream> streams_;
    std::vector<ActiveKernel> active_;
    std::vector<ActiveDelay> delays_;
    ActiveCopy copy_;
    std::deque<std::pair<Op, int>> copy_queue_; //!< (op, stream)
    std::vector<OpRecord> trace_;
    std::vector<double> event_times_;
    double profiling_us_ = 0.0;
    double jitter_std_ = 0.0;
    std::uint64_t jitter_state_ = 0;

    // Utilization window accumulators.
    double win_start_ = 0.0;
    double sm_busy_integral_ = 0.0;
    double gpu_busy_s_ = 0.0;
    double copy_busy_s_ = 0.0;
    double dram_bytes_win_ = 0.0;

    // Device metrics, labeled {device=<name>} and recorded in
    // simulation order (deterministic). Handles are created once in
    // the constructor; recording is lock-cheap.
    obs::Counter m_kernel_launches_;
    obs::Counter m_memcpy_bytes_h2d_;
    obs::Counter m_memcpy_bytes_d2h_;
    obs::Counter m_memcpy_chunks_h2d_;
    obs::Counter m_memcpy_chunks_d2h_;
    obs::Histogram m_kernel_stall_us_;    //!< DRAM-contention stalls
    obs::Histogram m_wave_waste_pct_;     //!< wave-quantization waste
};

} // namespace edgert::gpusim

#endif // EDGERT_GPUSIM_SIM_HH
