#include "gpusim/device.hh"

#include <algorithm>

namespace edgert::gpusim {

double
DeviceSpec::smFlopsPerCycle(bool tensor_core) const
{
    if (tensor_core) {
        // Each Volta tensor core sustains a 4x4x4 half-precision
        // MMA per cycle: 64 MACs = 128 FLOPs.
        return static_cast<double>(tensor_cores_per_sm) * 128.0;
    }
    return static_cast<double>(cuda_cores_per_sm) * 2.0;
}

double
DeviceSpec::peakFp32Flops() const
{
    return sm_count * smFlopsPerCycle(false) * gpu_clock_ghz * 1e9;
}

double
DeviceSpec::peakFp16Flops() const
{
    return sm_count * smFlopsPerCycle(true) * gpu_clock_ghz * 1e9;
}

double
DeviceSpec::effDramBps() const
{
    return profile_dram_gbps * 1e9 * dram_efficiency;
}

double
DeviceSpec::gpuPowerMw(double load_fraction) const
{
    double load = std::min(1.0, std::max(0.0, load_fraction));
    double clock_ratio =
        max_clock_ghz > 0.0 ? gpu_clock_ghz / max_clock_ghz : 1.0;
    double dynamic = (gpu_peak_mw - gpu_idle_mw) * load *
                     clock_ratio * clock_ratio * clock_ratio;
    return gpu_idle_mw + dynamic;
}

DeviceSpec
DeviceSpec::withClock(double ghz) const
{
    DeviceSpec s = *this;
    s.gpu_clock_ghz = ghz;
    return s;
}

DeviceSpec
DeviceSpec::atMaxClock() const
{
    DeviceSpec s = withClock(max_clock_ghz);
    s.profile_dram_gbps = dram_gbps; // MAXN unlocks full EMC clock
    return s;
}

DeviceSpec
DeviceSpec::xavierNX()
{
    DeviceSpec s;
    s.name = "xavier-nx";
    s.sm_count = 6;
    s.cpu_cores = 6;
    s.cuda_cores_per_sm = 64;
    s.tensor_cores_per_sm = 8;
    s.l1_kb_per_sm = 128;
    s.l2_kb = 512;
    s.ram_gb = 8.0;
    s.dram_gbps = 51.2;
    s.profile_dram_gbps = 44.0;   // EMC capped in the pinned profile
    s.bus_bits = 128;
    s.gpu_clock_ghz = 0.599;      // paper's pinned latency clock
    s.min_clock_ghz = 0.114;
    s.max_clock_ghz = 1.10925;    // paper's concurrency clock
    s.h2d_gbps = 2.9;
    s.h2d_transfer_overhead_us = 25.0;
    s.kernel_launch_us = 6.0;
    s.int8_speedup = 1.6;
    s.gpu_idle_mw = 310.0;
    s.gpu_peak_mw = 7600.0; // 15 W module, GPU rail share
    return s;
}

DeviceSpec
DeviceSpec::xavierAGX()
{
    DeviceSpec s;
    s.name = "xavier-agx";
    s.sm_count = 8;
    s.cpu_cores = 8;
    s.cuda_cores_per_sm = 64;
    s.tensor_cores_per_sm = 8;
    s.l1_kb_per_sm = 128;
    s.l2_kb = 512;
    s.ram_gb = 32.0;
    s.dram_gbps = 137.0;
    s.profile_dram_gbps = 49.0;   // EMC capped in the pinned profile
    s.bus_bits = 256;
    s.gpu_clock_ghz = 0.624;      // paper's pinned latency clock
    s.min_clock_ghz = 0.114;
    s.max_clock_ghz = 1.377;      // paper's concurrency clock
    s.h2d_gbps = 5.3;
    s.h2d_transfer_overhead_us = 175.0;
    s.kernel_launch_us = 7.0;
    s.int8_speedup = 1.45; // 8-SM L2 thrash taxes INT8 tiles harder
    s.gpu_idle_mw = 480.0;
    s.gpu_peak_mw = 15300.0; // 30 W module, GPU rail share
    return s;
}

} // namespace edgert::gpusim
