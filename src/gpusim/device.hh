#ifndef EDGERT_GPUSIM_DEVICE_HH
#define EDGERT_GPUSIM_DEVICE_HH

/**
 * @file
 * Embedded GPU device models.
 *
 * The two presets mirror the paper's Table I: Jetson Xavier NX and
 * Jetson Xavier AGX, both Volta-class (GV10B). The memcpy-path
 * constants (effective host-to-device bandwidth and per-transfer
 * driver overhead) are calibrated from the paper's Table X
 * measurements; see DESIGN.md §4.
 */

#include <cstdint>
#include <string>

namespace edgert::gpusim {

/**
 * Static description of one embedded GPU platform.
 */
struct DeviceSpec
{
    std::string name;

    // --- Compute resources (Table I) ---
    int sm_count = 0;
    int cuda_cores_per_sm = 64;
    int tensor_cores_per_sm = 8;
    int l1_kb_per_sm = 128;
    int l2_kb = 512;

    /**
     * Carmel ARM v8.2 CPU cores (Table I). Host-side work — engine
     * building above all — runs on these, so they bound the
     * builder's tactic-sweep parallelism on the platform itself.
     */
    int cpu_cores = 0;

    // --- Memory system ---
    double ram_gb = 0.0;
    double dram_gbps = 0.0;  //!< peak DRAM bandwidth (GB/s, Table I)
    int bus_bits = 0;
    double dram_efficiency = 0.80; //!< achievable fraction of peak

    /**
     * DRAM bandwidth available in the *current* power profile.
     * The paper pins the GPU clock near 600 MHz for the latency
     * experiments, which also caps the EMC (memory) clock: both
     * boards then see comparable effective bandwidth. Only the MAXN
     * concurrency experiments unlock the full Table I figure
     * (atMaxClock() restores dram_gbps).
     */
    double profile_dram_gbps = 0.0;

    /**
     * L2-capacity sharing penalty: both GV10B variants carry the
     * same 512 KB L2, so the AGX's extra SMs keep more concurrent
     * tile working sets resident and spill more traffic to DRAM.
     * Extra DRAM traffic = coeff * excess_footprint / L2.
     */
    double l2_spill_coeff = 0.5;

    // --- Clocks ---
    double gpu_clock_ghz = 0.0; //!< clock used for this experiment
    double min_clock_ghz = 0.0;
    double max_clock_ghz = 0.0;

    // --- Host-to-device copy path (calibrated, see file comment) ---
    double h2d_gbps = 0.0;              //!< effective pinned-copy bw
    double h2d_transfer_overhead_us = 0.0; //!< driver cost per transfer

    // --- Launch path ---
    double kernel_launch_us = 6.0; //!< CPU->GPU launch latency

    /**
     * Effective INT8 (IMMA/DP4A) throughput multiplier over the
     * FP16 HMMA peak. The Volta iGPUs run INT8 tensor ops at
     * nominally 2x FP16, but layout conversions and the partial
     * IMMA coverage of cuDNN's edge tactics land the *effective*
     * rate lower — and lower still on the 8-SM AGX, whose extra
     * concurrent tiles thrash the shared 512 KB L2 harder under
     * the denser INT8 working sets.
     */
    double int8_speedup = 1.6;

    // --- GPU rail power model (tegrastats VDD_GPU analogue) ---
    double gpu_idle_mw = 0.0;
    double gpu_peak_mw = 0.0; //!< fully loaded at max clock

    /**
     * Estimated GPU rail power at the given load fraction (0..1)
     * and the current clock. Dynamic power scales ~cubically with
     * clock (voltage tracks frequency on these rails).
     */
    double gpuPowerMw(double load_fraction) const;

    /** Peak FP32 throughput at the current clock, in FLOP/s. */
    double peakFp32Flops() const;

    /** Peak FP16 tensor-core throughput at the current clock. */
    double peakFp16Flops() const;

    /** FP32/FP16 flops per SM per cycle. */
    double smFlopsPerCycle(bool tensor_core) const;

    /** Achievable DRAM bandwidth in bytes/s (current profile). */
    double effDramBps() const;

    /** Copy of this spec with a different GPU clock. */
    DeviceSpec withClock(double ghz) const;

    /** Copy of this spec at the platform's maximum GPU clock. */
    DeviceSpec atMaxClock() const;

    /**
     * Jetson Xavier NX: 384 CUDA cores (6 SMs), 48 tensor cores,
     * 8 GB LPDDR4x @ 51.2 GB/s. Default clock is the 599 MHz the
     * paper pins for the latency experiments.
     */
    static DeviceSpec xavierNX();

    /**
     * Jetson Xavier AGX: 512 CUDA cores (8 SMs), 64 tensor cores,
     * 32 GB LPDDR4x @ 137 GB/s. Default clock 624 MHz.
     */
    static DeviceSpec xavierAGX();
};

} // namespace edgert::gpusim

#endif // EDGERT_GPUSIM_DEVICE_HH
