#include "gpusim/sim.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gpusim/timing.hh"

namespace edgert::gpusim {

namespace {

constexpr double kTimeEps = 1e-12;  // seconds
constexpr double kFracEps = 1e-9;   // progress fraction

/**
 * Weighted max-min fair allocation of `capacity` among consumers
 * with per-consumer caps and priority weights. Returns grants
 * summing to at most capacity, never exceeding caps; uncapped
 * consumers receive capacity in proportion to their weights.
 */
std::vector<double>
waterFill(const std::vector<double> &caps, double capacity,
          const std::vector<double> &weights)
{
    std::vector<double> grant(caps.size(), 0.0);
    std::vector<std::size_t> open;
    for (std::size_t i = 0; i < caps.size(); i++)
        if (caps[i] > 0.0)
            open.push_back(i);

    double remaining = capacity;
    while (!open.empty() && remaining > 1e-15) {
        double weight_sum = 0.0;
        for (std::size_t i : open)
            weight_sum += weights[i];
        bool any_capped = false;
        std::vector<std::size_t> next;
        for (std::size_t i : open) {
            double share = remaining * weights[i] / weight_sum;
            if (caps[i] - grant[i] <= share) {
                any_capped = true;
            } else {
                next.push_back(i);
            }
        }
        if (!any_capped) {
            for (std::size_t i : next) {
                grant[i] += remaining * weights[i] / weight_sum;
            }
            remaining = 0.0;
            break;
        }
        // Saturate capped consumers, then redistribute.
        std::vector<std::size_t> still_open;
        for (std::size_t i : open) {
            double share = remaining * weights[i] / weight_sum;
            if (caps[i] - grant[i] <= share) {
                remaining -= caps[i] - grant[i];
                grant[i] = caps[i];
            } else {
                still_open.push_back(i);
            }
        }
        open = std::move(still_open);
    }
    return grant;
}

} // namespace

double
UtilStats::smUtilizationPct(int sm_count) const
{
    if (window_s <= 0.0 || sm_count <= 0)
        return 0.0;
    return 100.0 * sm_busy_integral /
           (window_s * static_cast<double>(sm_count));
}

double
UtilStats::busyPct() const
{
    return window_s > 0.0 ? 100.0 * gpu_busy_s / window_s : 0.0;
}

GpuSim::GpuSim(const DeviceSpec &spec) : spec_(spec)
{
    if (spec_.sm_count <= 0)
        fatal("GpuSim: device '", spec_.name, "' has no SMs");
    streams_.emplace_back(); // default stream 0

    obs::MetricRegistry &reg = obs::MetricRegistry::global();
    const obs::Labels dev = {{"device", spec_.name}};
    m_kernel_launches_ = reg.counter("gpusim.kernel.launches", dev);
    m_memcpy_bytes_h2d_ = reg.counter(
        "gpusim.memcpy.bytes",
        {{"device", spec_.name}, {"dir", "h2d"}});
    m_memcpy_bytes_d2h_ = reg.counter(
        "gpusim.memcpy.bytes",
        {{"device", spec_.name}, {"dir", "d2h"}});
    m_memcpy_chunks_h2d_ = reg.counter(
        "gpusim.memcpy.chunks",
        {{"device", spec_.name}, {"dir", "h2d"}});
    m_memcpy_chunks_d2h_ = reg.counter(
        "gpusim.memcpy.chunks",
        {{"device", spec_.name}, {"dir", "d2h"}});
    m_kernel_stall_us_ =
        reg.histogram("gpusim.kernel.stall_us", dev);
    m_wave_waste_pct_ =
        reg.histogram("gpusim.kernel.wave_waste_pct", dev);
}

int
GpuSim::createStream(double priority_weight)
{
    if (priority_weight <= 0.0)
        fatal("createStream: priority weight must be positive");
    streams_.emplace_back();
    streams_.back().weight = priority_weight;
    return static_cast<int>(streams_.size()) - 1;
}

void
GpuSim::launchKernel(int stream, KernelDesc kernel)
{
    Op op;
    op.kind = OpKind::kKernel;
    op.kernel = std::move(kernel);
    streams_.at(static_cast<std::size_t>(stream)).queue.push_back(
        std::move(op));
    m_kernel_launches_.add();
}

void
GpuSim::memcpyH2D(int stream, std::uint64_t bytes, int transfers,
                  std::string tag, bool pinned)
{
    Op op;
    op.kind = OpKind::kMemcpyH2D;
    op.bytes = bytes;
    op.transfers = transfers;
    op.pinned = pinned;
    op.tag = std::move(tag);
    streams_.at(static_cast<std::size_t>(stream)).queue.push_back(
        std::move(op));
}

void
GpuSim::memcpyD2H(int stream, std::uint64_t bytes, int transfers,
                  std::string tag, bool pinned)
{
    Op op;
    op.kind = OpKind::kMemcpyD2H;
    op.bytes = bytes;
    op.transfers = transfers;
    op.pinned = pinned;
    op.tag = std::move(tag);
    streams_.at(static_cast<std::size_t>(stream)).queue.push_back(
        std::move(op));
}

void
GpuSim::hostDelay(int stream, double seconds)
{
    Op op;
    op.kind = OpKind::kDelay;
    op.delay_s = seconds;
    op.tag = "host_delay";
    streams_.at(static_cast<std::size_t>(stream)).queue.push_back(
        std::move(op));
}

void
GpuSim::delayUntil(int stream, double seconds)
{
    Op op;
    op.kind = OpKind::kDelay;
    op.delay_s = seconds;
    op.delay_until = true;
    op.tag = "release_at";
    streams_.at(static_cast<std::size_t>(stream)).queue.push_back(
        std::move(op));
}

EventId
GpuSim::recordEvent(int stream)
{
    EventId id = static_cast<EventId>(event_times_.size());
    event_times_.push_back(-1.0);
    Op op;
    op.kind = OpKind::kMarker;
    op.event = id;
    streams_.at(static_cast<std::size_t>(stream)).queue.push_back(
        std::move(op));
    return id;
}

double
GpuSim::eventSeconds(EventId id) const
{
    double t = event_times_.at(static_cast<std::size_t>(id));
    if (t < 0.0)
        fatal("eventSeconds: event ", id, " has not completed");
    return t;
}

void
GpuSim::resetStats()
{
    win_start_ = now_;
    sm_busy_integral_ = 0.0;
    gpu_busy_s_ = 0.0;
    copy_busy_s_ = 0.0;
    dram_bytes_win_ = 0.0;
}

UtilStats
GpuSim::stats() const
{
    UtilStats s;
    s.window_s = now_ - win_start_;
    s.sm_busy_integral = sm_busy_integral_;
    s.gpu_busy_s = gpu_busy_s_;
    s.copy_busy_s = copy_busy_s_;
    s.dram_bytes = dram_bytes_win_;
    return s;
}

void
GpuSim::setTimingJitter(double rel_std, std::uint64_t seed)
{
    jitter_std_ = rel_std;
    jitter_state_ = seed;
}

double
GpuSim::jitterFactor()
{
    if (jitter_std_ <= 0.0)
        return 1.0;
    Rng rng(mix64(jitter_state_++));
    return std::max(0.5, 1.0 + rng.gaussian(0.0, jitter_std_));
}

void
GpuSim::startCopyIfIdle()
{
    if (copy_.valid || copy_queue_.empty())
        return;
    auto [op, stream] = copy_queue_.front();
    copy_queue_.pop_front();
    copy_.op = std::move(op);
    copy_.stream = stream;
    copy_.start_s = now_;
    double dur = memcpySeconds(spec_, copy_.op.bytes,
                               copy_.op.transfers);
    if (copy_.op.pinned) {
        // Pre-pinned ring buffers skip the pageable staging path.
        double full_overhead = spec_.h2d_transfer_overhead_us * 1e-6 *
                               std::max(1, copy_.op.transfers);
        dur -= full_overhead * 0.9;
    }
    dur += profiling_us_ * 1e-6 *
           static_cast<double>(std::max(1, copy_.op.transfers));
    copy_.end_s = now_ + dur * jitterFactor();
    copy_.valid = true;
}

void
GpuSim::admitReady()
{
    for (std::size_t si = 0; si < streams_.size(); si++) {
        Stream &st = streams_[si];
        while (!st.busy && !st.queue.empty()) {
            Op &head = st.queue.front();
            if (head.kind == OpKind::kMarker) {
                event_times_.at(
                    static_cast<std::size_t>(head.event)) = now_;
                st.queue.pop_front();
                continue;
            }
            if (head.kind == OpKind::kKernel) {
                ActiveKernel ak;
                ak.op = std::move(head);
                ak.stream = static_cast<int>(si);
                ak.start_s = now_;
                ak.launch_remaining_s =
                    (spec_.kernel_launch_us + profiling_us_) * 1e-6;
                ak.jitter = jitterFactor();
                active_.push_back(std::move(ak));
            } else if (head.kind == OpKind::kDelay) {
                ActiveDelay ad;
                ad.op = std::move(head);
                ad.stream = static_cast<int>(si);
                ad.start_s = now_;
                ad.end_s = ad.op.delay_until
                               ? std::max(now_, ad.op.delay_s)
                               : now_ + ad.op.delay_s;
                delays_.push_back(std::move(ad));
            } else {
                copy_queue_.emplace_back(std::move(head),
                                         static_cast<int>(si));
            }
            st.queue.pop_front();
            st.busy = true;
        }
    }
    startCopyIfIdle();
}

void
GpuSim::recomputeShares()
{
    std::vector<std::size_t> exec;
    for (std::size_t i = 0; i < active_.size(); i++)
        if (active_[i].in_exec)
            exec.push_back(i);
    if (exec.empty())
        return;

    // SM allocation: weighted max-min fair, capped by each kernel's
    // block count (a 3-block grid cannot occupy 6 SMs). Weights come
    // from the owning stream's priority.
    std::vector<double> sm_caps, prio;
    sm_caps.reserve(exec.size());
    prio.reserve(exec.size());
    for (std::size_t i : exec) {
        sm_caps.push_back(std::min(
            static_cast<double>(spec_.sm_count),
            static_cast<double>(active_[i].op.kernel.grid_blocks)));
        prio.push_back(
            streams_[static_cast<std::size_t>(active_[i].stream)]
                .weight);
    }
    auto sm_grant = waterFill(
        sm_caps, static_cast<double>(spec_.sm_count), prio);

    // Bandwidth allocation: demands derive from the pace each kernel
    // would sustain at its SM grant.
    std::vector<double> t_comp(exec.size());
    std::vector<double> bw_caps(exec.size(), 0.0);
    for (std::size_t j = 0; j < exec.size(); j++) {
        const ActiveKernel &ak = active_[exec[j]];
        double alloc = std::max(sm_grant[j], 1e-6);
        t_comp[j] = kernelComputeSeconds(spec_, ak.op.kernel, alloc);
        if (ak.op.kernel.dram_bytes > 0) {
            double unconstrained = std::max(
                t_comp[j], kernelMemSeconds(spec_, ak.op.kernel));
            bw_caps[j] = static_cast<double>(ak.op.kernel.dram_bytes) /
                         std::max(unconstrained, 1e-12);
        }
    }
    auto bw_grant = waterFill(bw_caps, spec_.effDramBps(), prio);

    for (std::size_t j = 0; j < exec.size(); j++) {
        ActiveKernel &ak = active_[exec[j]];
        double t_mem = 0.0;
        if (ak.op.kernel.dram_bytes > 0)
            t_mem = static_cast<double>(ak.op.kernel.dram_bytes) /
                    std::max(bw_grant[j], 1e-3);
        double dur = std::max(t_comp[j], t_mem) * ak.jitter;
        ak.exec_duration_s = std::max(dur, kTimeEps);
        ak.alloc_sms = sm_grant[j];
        // Tail waves leave some of the allocated SMs idle on
        // average; this is what caps tegrastats-style utilization
        // in the paper's Figures 3/4 at ~82-86%.
        double usable = std::min(
            std::max(sm_grant[j], 1e-6),
            static_cast<double>(ak.op.kernel.grid_blocks));
        double conc = usable *
                      static_cast<double>(
                          ak.op.kernel.max_blocks_per_sm);
        ak.wave_util =
            1.0 / waveFactor(ak.op.kernel.grid_blocks, conc);
        // GR3D counts issue-active cycles: memory-stall time while
        // resident discounts the reported load.
        double raw_dur = std::max(t_comp[j], t_mem);
        ak.issue_act =
            raw_dur > 0.0 ? std::min(1.0, t_comp[j] / raw_dur) : 1.0;
    }
}

double
GpuSim::nextEventDt() const
{
    double dt = std::numeric_limits<double>::infinity();
    for (const auto &ak : active_) {
        if (ak.in_exec) {
            double rem = (1.0 - ak.frac_done) * ak.exec_duration_s;
            dt = std::min(dt, rem);
        } else {
            dt = std::min(dt, ak.launch_remaining_s);
        }
    }
    if (copy_.valid)
        dt = std::min(dt, copy_.end_s - now_);
    for (const auto &ad : delays_)
        dt = std::min(dt, ad.end_s - now_);
    return std::max(dt, 0.0);
}

void
GpuSim::advance(double dt)
{
    bool any_exec = false;
    double sm_alloc = 0.0;
    for (auto &ak : active_) {
        if (ak.in_exec) {
            double dfrac = dt / ak.exec_duration_s;
            dfrac = std::min(dfrac, 1.0 - ak.frac_done);
            ak.frac_done += dfrac;
            sm_alloc += ak.alloc_sms * ak.wave_util *
                        (0.25 + 0.75 * ak.issue_act);
            dram_bytes_win_ +=
                dfrac *
                static_cast<double>(ak.op.kernel.dram_bytes);
            any_exec = true;
        } else {
            ak.launch_remaining_s =
                std::max(0.0, ak.launch_remaining_s - dt);
        }
    }
    sm_busy_integral_ += sm_alloc * dt;
    if (any_exec)
        gpu_busy_s_ += dt;
    if (copy_.valid)
        copy_busy_s_ += dt;
    now_ += dt;
}

void
GpuSim::finishOp(const Op &op, int stream, double start_s)
{
    OpRecord rec;
    rec.kind = op.kind;
    rec.stream = stream;
    rec.start_s = start_s;
    rec.end_s = now_;
    rec.bytes = op.bytes;
    if (op.kind == OpKind::kKernel) {
        rec.name = op.kernel.name;
        rec.kernel = op.kernel;
    } else {
        rec.name = op.tag;
    }
    if (op.kind == OpKind::kMemcpyH2D) {
        m_memcpy_bytes_h2d_.add(
            static_cast<std::int64_t>(op.bytes));
        m_memcpy_chunks_h2d_.add(op.transfers);
    } else if (op.kind == OpKind::kMemcpyD2H) {
        m_memcpy_bytes_d2h_.add(
            static_cast<std::int64_t>(op.bytes));
        m_memcpy_chunks_d2h_.add(op.transfers);
    }
    trace_.push_back(std::move(rec));
    streams_.at(static_cast<std::size_t>(stream)).busy = false;
}

void
GpuSim::completeFinished()
{
    // Phase transitions: launch done -> execution begins.
    for (auto &ak : active_) {
        if (!ak.in_exec && ak.launch_remaining_s <= kTimeEps)
            ak.in_exec = true;
    }
    // Kernel completions.
    for (std::size_t i = 0; i < active_.size();) {
        ActiveKernel &ak = active_[i];
        if (ak.in_exec && ak.frac_done >= 1.0 - kFracEps) {
            // Stall time = exec time spent memory-blocked rather
            // than issuing; waste = idle fraction of allocated SMs
            // in the tail wave.
            m_kernel_stall_us_.record((1.0 - ak.issue_act) *
                                      ak.exec_duration_s * 1e6);
            m_wave_waste_pct_.record((1.0 - ak.wave_util) * 100.0);
            finishOp(ak.op, ak.stream, ak.start_s);
            active_.erase(active_.begin() +
                          static_cast<std::ptrdiff_t>(i));
        } else {
            i++;
        }
    }
    // Copy completion.
    if (copy_.valid && copy_.end_s <= now_ + kTimeEps) {
        finishOp(copy_.op, copy_.stream, copy_.start_s);
        copy_.valid = false;
        startCopyIfIdle();
    }
    // Delay completions.
    for (std::size_t i = 0; i < delays_.size();) {
        if (delays_[i].end_s <= now_ + kTimeEps) {
            finishOp(delays_[i].op, delays_[i].stream,
                     delays_[i].start_s);
            delays_.erase(delays_.begin() +
                          static_cast<std::ptrdiff_t>(i));
        } else {
            i++;
        }
    }
}

bool
GpuSim::step()
{
    admitReady();
    recomputeShares();
    bool idle = active_.empty() && delays_.empty() && !copy_.valid &&
                copy_queue_.empty();
    if (idle) {
        bool pending = false;
        for (const auto &st : streams_)
            if (!st.queue.empty() || st.busy)
                pending = true;
        if (!pending)
            return false;
        panic("GpuSim deadlock: streams pending but nothing active");
    }
    double dt = nextEventDt();
    if (!std::isfinite(dt))
        panic("GpuSim: no next event while ops active");
    advance(dt);
    completeFinished();
    // Resolve markers that became ready at this timestamp, so
    // runUntilEvent() stops at the event's own completion time.
    admitReady();
    return true;
}

void
GpuSim::run()
{
    while (step()) {
    }
}

void
GpuSim::runUntilEvent(EventId id)
{
    while (event_times_.at(static_cast<std::size_t>(id)) < 0.0) {
        if (!step())
            fatal("runUntilEvent: simulation drained before event ",
                  id, " completed");
    }
}

} // namespace edgert::gpusim
