#include "gpusim/sim.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gpusim/timing.hh"

namespace edgert::gpusim {

namespace {

constexpr double kTimeEps = 1e-12;  // seconds
constexpr double kFracEps = 1e-9;   // progress fraction

} // namespace

double
UtilStats::smUtilizationPct(int sm_count) const
{
    if (window_s <= 0.0 || sm_count <= 0)
        return 0.0;
    return 100.0 * sm_busy_integral /
           (window_s * static_cast<double>(sm_count));
}

double
UtilStats::busyPct() const
{
    return window_s > 0.0 ? 100.0 * gpu_busy_s / window_s : 0.0;
}

GpuSim::GpuSim(const DeviceSpec &spec,
               obs::MetricRegistry *registry)
    : spec_(spec)
{
    if (spec_.sm_count <= 0)
        fatal("GpuSim: device '", spec_.name, "' has no SMs");
    sm_count_d_ = static_cast<double>(spec_.sm_count);
    eff_dram_bps_ = spec_.effDramBps();
    streams_.emplace_back(); // default stream 0

    obs::MetricRegistry &reg =
        registry ? *registry : obs::MetricRegistry::global();
    const obs::Labels dev = {{"device", spec_.name}};
    m_kernel_launches_ = reg.counter("gpusim.kernel.launches", dev);
    m_memcpy_bytes_h2d_ = reg.counter(
        "gpusim.memcpy.bytes",
        {{"device", spec_.name}, {"dir", "h2d"}});
    m_memcpy_bytes_d2h_ = reg.counter(
        "gpusim.memcpy.bytes",
        {{"device", spec_.name}, {"dir", "d2h"}});
    m_memcpy_chunks_h2d_ = reg.counter(
        "gpusim.memcpy.chunks",
        {{"device", spec_.name}, {"dir", "h2d"}});
    m_memcpy_chunks_d2h_ = reg.counter(
        "gpusim.memcpy.chunks",
        {{"device", spec_.name}, {"dir", "d2h"}});
    m_kernel_stall_us_ =
        reg.histogram("gpusim.kernel.stall_us", dev);
    m_wave_waste_pct_ =
        reg.histogram("gpusim.kernel.wave_waste_pct", dev);
}

int
GpuSim::createStream(double priority_weight)
{
    if (priority_weight <= 0.0)
        fatal("createStream: priority weight must be positive");
    streams_.emplace_back();
    streams_.back().weight = priority_weight;
    return static_cast<int>(streams_.size()) - 1;
}

std::int32_t
GpuSim::acquireOp(OpKind kind)
{
    std::int32_t idx = ops_.acquire();
    Op &op = ops_[idx];
    // Recycled slots keep string capacity (kernel name / tag); every
    // scalar field is reset here so tenants never see stale state.
    op.kind = kind;
    op.bytes = 0;
    op.transfers = 0;
    op.pinned = false;
    op.event = -1;
    op.delay_s = 0.0;
    op.delay_until = false;
    op.next = -1;
    ops_enqueued_++;
    return idx;
}

void
GpuSim::pushOp(int stream, std::int32_t op_idx)
{
    Stream &st = streams_.at(static_cast<std::size_t>(stream));
    if (st.tail == -1)
        st.head = op_idx;
    else
        ops_[st.tail].next = op_idx;
    st.tail = op_idx;
    if (!st.busy)
        markReady(stream);
}

void
GpuSim::markReady(std::int32_t stream)
{
    Stream &st = streams_[static_cast<std::size_t>(stream)];
    if (!st.in_ready) {
        st.in_ready = true;
        ready_.push_back(stream);
    }
}

void
GpuSim::launchKernel(int stream, const KernelDesc &kernel)
{
    std::int32_t idx = acquireOp(OpKind::kKernel);
    ops_[idx].kernel = kernel;
    pushOp(stream, idx);
    m_kernel_launches_.add();
}

void
GpuSim::launchKernel(int stream, KernelDesc &&kernel)
{
    std::int32_t idx = acquireOp(OpKind::kKernel);
    ops_[idx].kernel = std::move(kernel);
    pushOp(stream, idx);
    m_kernel_launches_.add();
}

void
GpuSim::memcpyH2D(int stream, std::uint64_t bytes, int transfers,
                  std::string tag, bool pinned)
{
    std::int32_t idx = acquireOp(OpKind::kMemcpyH2D);
    Op &op = ops_[idx];
    op.bytes = bytes;
    op.transfers = transfers;
    op.pinned = pinned;
    op.tag = std::move(tag);
    pushOp(stream, idx);
}

void
GpuSim::memcpyD2H(int stream, std::uint64_t bytes, int transfers,
                  std::string tag, bool pinned)
{
    std::int32_t idx = acquireOp(OpKind::kMemcpyD2H);
    Op &op = ops_[idx];
    op.bytes = bytes;
    op.transfers = transfers;
    op.pinned = pinned;
    op.tag = std::move(tag);
    pushOp(stream, idx);
}

void
GpuSim::hostDelay(int stream, double seconds)
{
    std::int32_t idx = acquireOp(OpKind::kDelay);
    Op &op = ops_[idx];
    op.delay_s = seconds;
    op.tag = "host_delay";
    pushOp(stream, idx);
}

void
GpuSim::delayUntil(int stream, double seconds)
{
    std::int32_t idx = acquireOp(OpKind::kDelay);
    Op &op = ops_[idx];
    op.delay_s = seconds;
    op.delay_until = true;
    op.tag = "release_at";
    pushOp(stream, idx);
}

void
GpuSim::waitEvent(int stream, EventId event)
{
    if (event < 0 ||
        static_cast<std::size_t>(event) >= event_times_.size())
        fatal("waitEvent: unknown event ", event);
    std::int32_t idx = acquireOp(OpKind::kWaitEvent);
    Op &op = ops_[idx];
    op.event = event;
    op.tag = "wait_event";
    pushOp(stream, idx);
}

EventId
GpuSim::recordEvent(int stream)
{
    EventId id = static_cast<EventId>(event_times_.size());
    event_times_.push_back(-1.0);
    std::int32_t idx = acquireOp(OpKind::kMarker);
    ops_[idx].event = id;
    pushOp(stream, idx);
    return id;
}

double
GpuSim::eventSeconds(EventId id) const
{
    double t = event_times_.at(static_cast<std::size_t>(id));
    if (t < 0.0)
        fatal("eventSeconds: event ", id, " has not completed");
    return t;
}

void
GpuSim::resetStats()
{
    win_start_ = now_;
    sm_busy_integral_ = 0.0;
    gpu_busy_s_ = 0.0;
    copy_busy_s_ = 0.0;
    dram_bytes_win_ = 0.0;
}

UtilStats
GpuSim::stats() const
{
    UtilStats s;
    s.window_s = now_ - win_start_;
    s.sm_busy_integral = sm_busy_integral_;
    s.gpu_busy_s = gpu_busy_s_;
    s.copy_busy_s = copy_busy_s_;
    s.dram_bytes = dram_bytes_win_;
    return s;
}

SimStats
GpuSim::simStats() const
{
    SimStats s;
    s.events = events_;
    s.ops_enqueued = ops_enqueued_;
    s.ops_completed = ops_completed_;
    s.trace_records = trace_records_;
    s.arena_bytes =
        ops_.bytesReserved() +
        trace_.capacity() * sizeof(OpRecord) +
        delay_heap_.capacity() * sizeof(DelayEntry) +
        copy_ring_.bytesReserved() +
        active_.capacity() * sizeof(ActiveKernel);
    return s;
}

void
publishSimMetrics(const GpuSim &sim, const obs::Labels &labels,
                  double wall_seconds)
{
    obs::MetricRegistry &reg = obs::MetricRegistry::global();
    SimStats st = sim.simStats();
    reg.gauge("sim.events", labels)
        .set(static_cast<double>(st.events));
    reg.gauge("sim.arena.bytes", labels)
        .set(static_cast<double>(st.arena_bytes));
    reg.gauge("sim.simulated_seconds", labels)
        .set(sim.nowSeconds());
    reg.gauge("sim.wall_seconds", labels).set(wall_seconds);
}

void
GpuSim::setTraceMode(TraceMode mode, int sample_every)
{
    trace_mode_ = mode;
    trace_sample_ = sample_every < 1 ? 1 : sample_every;
}

void
GpuSim::reserveTrace(std::size_t records)
{
    trace_.reserve(records);
}

void
GpuSim::commitMetrics()
{
    for (double v : deferred_stall_us_)
        m_kernel_stall_us_.record(v);
    for (double v : deferred_waste_pct_)
        m_wave_waste_pct_.record(v);
    deferred_stall_us_.clear();
    deferred_waste_pct_.clear();
}

void
GpuSim::setTimingJitter(double rel_std, std::uint64_t seed)
{
    jitter_std_ = rel_std;
    jitter_state_ = seed;
}

double
GpuSim::jitterFactor()
{
    if (jitter_std_ <= 0.0)
        return 1.0;
    Rng rng(mix64(jitter_state_++));
    return std::max(0.5, 1.0 + rng.gaussian(0.0, jitter_std_));
}

void
GpuSim::startCopyIfIdle()
{
    if (copy_.valid || copy_ring_.empty())
        return;
    CopyEntry ce = copy_ring_.front();
    copy_ring_.pop();
    const Op &op = ops_[ce.op_idx];
    copy_.op_idx = ce.op_idx;
    copy_.stream = ce.stream;
    copy_.start_s = now_;
    double dur = memcpySeconds(spec_, op.bytes, op.transfers);
    if (op.pinned) {
        // Pre-pinned ring buffers skip the pageable staging path.
        double full_overhead = spec_.h2d_transfer_overhead_us * 1e-6 *
                               std::max(1, op.transfers);
        dur -= full_overhead * 0.9;
    }
    dur += profiling_us_ * 1e-6 *
           static_cast<double>(std::max(1, op.transfers));
    copy_.end_s = now_ + dur * jitterFactor();
    copy_.valid = true;
}

void
GpuSim::wakeWaiters(EventId id)
{
    // Resume every stream parked on this event, oldest wait first
    // (wait_list_ is insertion-ordered). finishOp re-marks streams
    // with queued work ready; admitReady's batch loop picks them up
    // in the same pass.
    std::size_t out = 0;
    for (std::size_t i = 0; i < wait_list_.size(); i++) {
        if (wait_list_[i].event == id) {
            const EventWaiter w = wait_list_[i];
            finishOp(w.op_idx, w.stream, w.start_s);
        } else {
            wait_list_[out++] = wait_list_[i];
        }
    }
    wait_list_.resize(out);
}

void
GpuSim::admitReady()
{
    // Waking an event waiter mid-pass re-marks its stream ready, so
    // each pass iterates a swapped-out batch and loops until no new
    // streams appear. Without waits this is one pass over the same
    // ascending stream order as the historical full scan (admission
    // order fixes the jitter draw sequence and the active-list
    // order, both observable in timing).
    while (!ready_.empty()) {
        std::sort(ready_.begin(), ready_.end());
        scratch_ready_.clear();
        scratch_ready_.swap(ready_);
        for (std::int32_t si : scratch_ready_) {
            Stream &st = streams_[static_cast<std::size_t>(si)];
            st.in_ready = false;
            while (!st.busy && st.head != -1) {
                std::int32_t idx = st.head;
                Op &head = ops_[idx];
                if (head.kind == OpKind::kMarker) {
                    EventId ev = head.event;
                    event_times_.at(static_cast<std::size_t>(ev)) =
                        now_;
                    st.head = head.next;
                    if (st.head == -1)
                        st.tail = -1;
                    ops_.release(idx);
                    if (!wait_list_.empty())
                        wakeWaiters(ev);
                    continue;
                }
                st.head = head.next;
                if (st.head == -1)
                    st.tail = -1;
                if (head.kind == OpKind::kWaitEvent) {
                    double t = event_times_.at(
                        static_cast<std::size_t>(head.event));
                    if (t >= 0.0) {
                        // Dependency already satisfied: retire for
                        // free and keep draining the stream.
                        finishOp(idx, si, now_);
                        continue;
                    }
                    EventWaiter w;
                    w.event = head.event;
                    w.op_idx = idx;
                    w.stream = si;
                    w.start_s = now_;
                    wait_list_.push_back(w);
                    st.busy = true;
                    continue;
                }
                if (head.kind == OpKind::kKernel) {
                    const KernelDesc &k = head.kernel;
                    ActiveKernel ak;
                    ak.op_idx = idx;
                    ak.stream = si;
                    ak.start_s = now_;
                    ak.launch_remaining_s =
                        (spec_.kernel_launch_us + profiling_us_) *
                        1e-6;
                    ak.jitter = jitterFactor();
                    // Cache every alloc-independent timing input
                    // now; each cached double is the exact value the
                    // per-step recomputation used to produce.
                    ak.has_flops = k.flops > 0;
                    ak.grid_blocks = k.grid_blocks;
                    ak.grid_d =
                        static_cast<double>(k.grid_blocks);
                    ak.maxb_d =
                        static_cast<double>(k.max_blocks_per_sm);
                    ak.flops_d = static_cast<double>(k.flops);
                    ak.per_sm_flops =
                        spec_.smFlopsPerCycle(k.tensor_core) *
                        spec_.gpu_clock_ghz * 1e9 *
                        std::max(1e-3, k.efficiency);
                    ak.sm_cap = std::min(sm_count_d_, ak.grid_d);
                    ak.has_dram = k.dram_bytes > 0;
                    ak.dram_d =
                        static_cast<double>(k.dram_bytes);
                    ak.mem_s = kernelMemSeconds(spec_, k);
                    active_.push_back(ak);
                } else if (head.kind == OpKind::kDelay) {
                    DelayEntry de;
                    de.op_idx = idx;
                    de.stream = si;
                    de.start_s = now_;
                    de.end_s = head.delay_until
                                   ? std::max(now_, head.delay_s)
                                   : now_ + head.delay_s;
                    de.seq = delay_seq_++;
                    delay_heap_.push_back(de);
                    std::push_heap(delay_heap_.begin(),
                                   delay_heap_.end(), DelayAfter{});
                } else {
                    copy_ring_.push(CopyEntry{idx, si});
                }
                st.busy = true;
            }
        }
    }
    startCopyIfIdle();
}

void
GpuSim::waterFillInto(const std::vector<double> &caps,
                      double capacity,
                      const std::vector<double> &weights,
                      std::vector<double> &grant)
{
    // Weighted max-min fair allocation of `capacity` among consumers
    // with per-consumer caps and priority weights; grants sum to at
    // most capacity and never exceed caps. Same algorithm — and the
    // same FP operation order — as the original free function; the
    // index vectors are members so steady state allocates nothing.
    if (caps.size() == 1) {
        // Scalar unroll of the first (and only) fill round; the
        // w/w non-cancellation is kept so the grant is the exact
        // double the loop below would produce.
        grant.assign(1, 0.0);
        if (caps[0] > 0.0 && capacity > 1e-15) {
            double share = capacity * weights[0] / weights[0];
            grant[0] = caps[0] <= share ? caps[0] : share;
        }
        return;
    }
    grant.assign(caps.size(), 0.0);
    wf_open_.clear();
    for (std::size_t i = 0; i < caps.size(); i++)
        if (caps[i] > 0.0)
            wf_open_.push_back(i);

    double remaining = capacity;
    while (!wf_open_.empty() && remaining > 1e-15) {
        double weight_sum = 0.0;
        for (std::size_t i : wf_open_)
            weight_sum += weights[i];
        bool any_capped = false;
        wf_next_.clear();
        for (std::size_t i : wf_open_) {
            double share = remaining * weights[i] / weight_sum;
            if (caps[i] - grant[i] <= share) {
                any_capped = true;
            } else {
                wf_next_.push_back(i);
            }
        }
        if (!any_capped) {
            for (std::size_t i : wf_next_) {
                grant[i] += remaining * weights[i] / weight_sum;
            }
            remaining = 0.0;
            break;
        }
        // Saturate capped consumers, then redistribute.
        wf_still_.clear();
        for (std::size_t i : wf_open_) {
            double share = remaining * weights[i] / weight_sum;
            if (caps[i] - grant[i] <= share) {
                remaining -= caps[i] - grant[i];
                grant[i] = caps[i];
            } else {
                wf_still_.push_back(i);
            }
        }
        wf_open_.swap(wf_still_);
    }
}

void
GpuSim::recomputeShares()
{
    scratch_exec_.clear();
    for (std::size_t i = 0; i < active_.size(); i++)
        if (active_[i].in_exec)
            scratch_exec_.push_back(i);
    if (scratch_exec_.empty())
        return;

    // SM allocation: weighted max-min fair, capped by each kernel's
    // block count (a 3-block grid cannot occupy 6 SMs). Weights come
    // from the owning stream's priority.
    scratch_caps_.clear();
    scratch_prio_.clear();
    for (std::size_t i : scratch_exec_) {
        scratch_caps_.push_back(active_[i].sm_cap);
        scratch_prio_.push_back(
            streams_[static_cast<std::size_t>(active_[i].stream)]
                .weight);
    }
    waterFillInto(scratch_caps_, sm_count_d_, scratch_prio_,
                  scratch_sm_grant_);

    // Bandwidth allocation: demands derive from the pace each kernel
    // would sustain at its SM grant.
    scratch_tcomp_.assign(scratch_exec_.size(), 0.0);
    scratch_bwcaps_.assign(scratch_exec_.size(), 0.0);
    scratch_wave_.assign(scratch_exec_.size(), 1.0);
    for (std::size_t j = 0; j < scratch_exec_.size(); j++) {
        const ActiveKernel &ak = active_[scratch_exec_[j]];
        double alloc = std::max(scratch_sm_grant_[j], 1e-6);
        // kernelComputeSeconds inlined on the cached invariants
        // (identical FP expression order). The wave factor is also
        // what the wave_util pass below needs — min(alloc, grid)
        // equals min(max(grant, 1e-6), grid) — so compute it once.
        double usable = std::min(alloc, ak.grid_d);
        double conc = usable * ak.maxb_d;
        double wave = waveFactor(ak.grid_blocks, conc);
        scratch_wave_[j] = wave;
        double t_comp = 0.0;
        if (ak.has_flops)
            t_comp = ak.flops_d / (usable * ak.per_sm_flops) * wave;
        scratch_tcomp_[j] = t_comp;
        if (ak.has_dram) {
            double unconstrained = std::max(t_comp, ak.mem_s);
            scratch_bwcaps_[j] =
                ak.dram_d / std::max(unconstrained, 1e-12);
        }
    }
    waterFillInto(scratch_bwcaps_, eff_dram_bps_, scratch_prio_,
                  scratch_bw_grant_);

    for (std::size_t j = 0; j < scratch_exec_.size(); j++) {
        ActiveKernel &ak = active_[scratch_exec_[j]];
        double t_mem = 0.0;
        if (ak.has_dram)
            t_mem = ak.dram_d /
                    std::max(scratch_bw_grant_[j], 1e-3);
        double dur = std::max(scratch_tcomp_[j], t_mem) * ak.jitter;
        ak.exec_duration_s = std::max(dur, kTimeEps);
        ak.alloc_sms = scratch_sm_grant_[j];
        // Tail waves leave some of the allocated SMs idle on
        // average; this is what caps tegrastats-style utilization
        // in the paper's Figures 3/4 at ~82-86%.
        ak.wave_util = 1.0 / scratch_wave_[j];
        // GR3D counts issue-active cycles: memory-stall time while
        // resident discounts the reported load.
        double raw_dur = std::max(scratch_tcomp_[j], t_mem);
        ak.issue_act =
            raw_dur > 0.0
                ? std::min(1.0, scratch_tcomp_[j] / raw_dur)
                : 1.0;
    }
}

double
GpuSim::nextEventDt() const
{
    double dt = std::numeric_limits<double>::infinity();
    for (const auto &ak : active_) {
        if (ak.in_exec) {
            double rem = (1.0 - ak.frac_done) * ak.exec_duration_s;
            dt = std::min(dt, rem);
        } else {
            dt = std::min(dt, ak.launch_remaining_s);
        }
    }
    if (copy_.valid)
        dt = std::min(dt, copy_.end_s - now_);
    // The calendar's min end time is exactly the min the old full
    // scan found: subtracting the same now_ preserves order.
    if (!delay_heap_.empty())
        dt = std::min(dt, delay_heap_.front().end_s - now_);
    return std::max(dt, 0.0);
}

void
GpuSim::advance(double dt)
{
    bool any_exec = false;
    double sm_alloc = 0.0;
    for (auto &ak : active_) {
        if (ak.in_exec) {
            double dfrac = dt / ak.exec_duration_s;
            dfrac = std::min(dfrac, 1.0 - ak.frac_done);
            ak.frac_done += dfrac;
            sm_alloc += ak.alloc_sms * ak.wave_util *
                        (0.25 + 0.75 * ak.issue_act);
            dram_bytes_win_ += dfrac * ak.dram_d;
            any_exec = true;
        } else {
            ak.launch_remaining_s =
                std::max(0.0, ak.launch_remaining_s - dt);
        }
    }
    sm_busy_integral_ += sm_alloc * dt;
    if (any_exec)
        gpu_busy_s_ += dt;
    if (copy_.valid)
        copy_busy_s_ += dt;
    now_ += dt;
    events_++;
}

void
GpuSim::finishOp(std::int32_t op_idx, std::int32_t stream,
                 double start_s)
{
    const Op &op = ops_[op_idx];
    bool record = trace_mode_ == TraceMode::kFull ||
                  (trace_mode_ == TraceMode::kSampled &&
                   ops_completed_ %
                           static_cast<std::uint64_t>(
                               trace_sample_) ==
                       0);
    ops_completed_++;
    if (record) {
        trace_.emplace_back();
        OpRecord &rec = trace_.back();
        rec.kind = op.kind;
        rec.stream = stream;
        rec.start_s = start_s;
        rec.end_s = now_;
        rec.bytes = op.bytes;
        if (op.kind == OpKind::kKernel) {
            rec.name = op.kernel.name;
            rec.kernel = op.kernel;
        } else {
            rec.name = op.tag;
        }
        trace_records_++;
    }
    if (op.kind == OpKind::kMemcpyH2D) {
        m_memcpy_bytes_h2d_.add(
            static_cast<std::int64_t>(op.bytes));
        m_memcpy_chunks_h2d_.add(op.transfers);
    } else if (op.kind == OpKind::kMemcpyD2H) {
        m_memcpy_bytes_d2h_.add(
            static_cast<std::int64_t>(op.bytes));
        m_memcpy_chunks_d2h_.add(op.transfers);
    }
    Stream &st = streams_[static_cast<std::size_t>(stream)];
    st.busy = false;
    if (st.head != -1)
        markReady(stream);
    ops_.release(op_idx);
}

void
GpuSim::completeFinished()
{
    // Phase transitions: launch done -> execution begins.
    for (auto &ak : active_) {
        if (!ak.in_exec && ak.launch_remaining_s <= kTimeEps) {
            ak.in_exec = true;
            shares_dirty_ = true;
        }
    }
    // Kernel completions.
    for (std::size_t i = 0; i < active_.size();) {
        ActiveKernel &ak = active_[i];
        if (ak.in_exec && ak.frac_done >= 1.0 - kFracEps) {
            // Stall time = exec time spent memory-blocked rather
            // than issuing; waste = idle fraction of allocated SMs
            // in the tail wave.
            double stall_us =
                (1.0 - ak.issue_act) * ak.exec_duration_s * 1e6;
            double waste_pct = (1.0 - ak.wave_util) * 100.0;
            if (defer_metrics_) {
                deferred_stall_us_.push_back(stall_us);
                deferred_waste_pct_.push_back(waste_pct);
            } else {
                m_kernel_stall_us_.record(stall_us);
                m_wave_waste_pct_.record(waste_pct);
            }
            finishOp(ak.op_idx, ak.stream, ak.start_s);
            active_.erase(active_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            shares_dirty_ = true;
        } else {
            i++;
        }
    }
    // Copy completion.
    if (copy_.valid && copy_.end_s <= now_ + kTimeEps) {
        finishOp(copy_.op_idx, copy_.stream, copy_.start_s);
        copy_.valid = false;
        startCopyIfIdle();
    }
    // Delay completions: pop every expired calendar entry, then
    // retire them oldest-insertion-first — exactly the order the
    // old insertion-ordered list walk produced.
    if (!delay_heap_.empty() &&
        delay_heap_.front().end_s <= now_ + kTimeEps) {
        scratch_expired_.clear();
        while (!delay_heap_.empty() &&
               delay_heap_.front().end_s <= now_ + kTimeEps) {
            scratch_expired_.push_back(delay_heap_.front());
            std::pop_heap(delay_heap_.begin(), delay_heap_.end(),
                          DelayAfter{});
            delay_heap_.pop_back();
        }
        std::sort(scratch_expired_.begin(), scratch_expired_.end(),
                  [](const DelayEntry &a, const DelayEntry &b) {
                      return a.seq < b.seq;
                  });
        for (const DelayEntry &de : scratch_expired_)
            finishOp(de.op_idx, de.stream, de.start_s);
    }
}

bool
GpuSim::step()
{
    admitReady();
    // The water-fill is a pure function of the executing set, so it
    // only needs to rerun when that set changed; skipped steps keep
    // bit-identical durations/allocations.
    if (shares_dirty_) {
        recomputeShares();
        shares_dirty_ = false;
    }
    bool idle = active_.empty() && delay_heap_.empty() &&
                !copy_.valid && copy_ring_.empty();
    if (idle) {
        bool pending = false;
        for (const auto &st : streams_)
            if (st.head != -1 || st.busy)
                pending = true;
        if (!pending)
            return false;
        panic("GpuSim deadlock: streams pending but nothing active");
    }
    double dt = nextEventDt();
    if (!std::isfinite(dt))
        panic("GpuSim: no next event while ops active");
    advance(dt);
    completeFinished();
    // Resolve markers that became ready at this timestamp, so
    // runUntilEvent() stops at the event's own completion time.
    admitReady();
    return true;
}

void
GpuSim::run()
{
    // Pre-size the trace for the enqueued backlog so long replays
    // stop paying repeated O(n) vector growth mid-run.
    std::size_t backlog = ops_.live();
    if (trace_mode_ == TraceMode::kFull)
        trace_.reserve(trace_.size() + backlog);
    else if (trace_mode_ == TraceMode::kSampled)
        trace_.reserve(trace_.size() +
                       backlog / static_cast<std::size_t>(
                                     trace_sample_) +
                       1);
    while (step()) {
    }
}

void
GpuSim::runUntilEvent(EventId id)
{
    while (event_times_.at(static_cast<std::size_t>(id)) < 0.0) {
        if (!step())
            fatal("runUntilEvent: simulation drained before event ",
                  id, " completed");
    }
}

} // namespace edgert::gpusim
