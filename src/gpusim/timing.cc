#include "gpusim/timing.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace edgert::gpusim {

double
waveFactor(std::int64_t grid_blocks, double concurrent_blocks)
{
    if (grid_blocks <= 0 || concurrent_blocks <= 0.0)
        return 1.0;
    double g = static_cast<double>(grid_blocks);
    if (g <= concurrent_blocks)
        return 1.0;
    double ideal = g / concurrent_blocks;
    return std::ceil(ideal) / ideal;
}

double
kernelComputeSeconds(const DeviceSpec &spec, const KernelDesc &k,
                     double alloc_sms)
{
    if (k.flops <= 0)
        return 0.0;
    if (alloc_sms <= 0.0)
        panic("kernelComputeSeconds with zero SM allocation");
    // A kernel cannot spread fewer blocks over more SMs.
    double usable = std::min(alloc_sms,
                             static_cast<double>(k.grid_blocks));
    double per_sm_flops = spec.smFlopsPerCycle(k.tensor_core) *
                          spec.gpu_clock_ghz * 1e9 *
                          std::max(1e-3, k.efficiency);
    double conc = usable * static_cast<double>(k.max_blocks_per_sm);
    double wave = waveFactor(k.grid_blocks, conc);
    return static_cast<double>(k.flops) / (usable * per_sm_flops) *
           wave;
}

double
l2SpillFactor(const DeviceSpec &spec, const KernelDesc &k)
{
    double conc = std::min(
        static_cast<double>(k.grid_blocks),
        static_cast<double>(spec.sm_count) *
            static_cast<double>(k.max_blocks_per_sm));
    double footprint_kb = conc * k.tile_kb;
    double l2 = static_cast<double>(spec.l2_kb);
    if (footprint_kb <= l2)
        return 1.0;
    return 1.0 + spec.l2_spill_coeff * (footprint_kb - l2) / l2;
}

double
kernelMemSeconds(const DeviceSpec &spec, const KernelDesc &k)
{
    if (k.dram_bytes <= 0)
        return 0.0;
    double bw = spec.effDramBps();
    if (k.strided_access) {
        // Strided accesses consume a whole bus burst for ~16 useful
        // bytes; wider buses waste proportionally more.
        double burst_bytes = static_cast<double>(spec.bus_bits) / 8.0;
        double useful = std::min(1.0, 16.0 / burst_bytes);
        bw *= useful;
    }
    return static_cast<double>(k.dram_bytes) *
           l2SpillFactor(spec, k) / bw;
}

double
soloKernelSeconds(const DeviceSpec &spec, const KernelDesc &k)
{
    return std::max(
        kernelComputeSeconds(spec, k,
                             static_cast<double>(spec.sm_count)),
        kernelMemSeconds(spec, k));
}

double
memcpySeconds(const DeviceSpec &spec, std::uint64_t bytes,
              int transfers)
{
    double overhead = static_cast<double>(std::max(1, transfers)) *
                      spec.h2d_transfer_overhead_us * 1e-6;
    double wire = static_cast<double>(bytes) / (spec.h2d_gbps * 1e9);
    return overhead + wire;
}

} // namespace edgert::gpusim
