#ifndef EDGERT_GPUSIM_TIMING_HH
#define EDGERT_GPUSIM_TIMING_HH

/**
 * @file
 * Analytic kernel and memcpy timing model.
 *
 * Kernel execution time follows a roofline with wave quantization:
 *
 *   t_exec = max(t_comp, t_mem)
 *   t_comp = flops / (alloc_sms * per_sm_flops * efficiency) * wave
 *   t_mem  = dram_bytes / granted_bandwidth
 *   wave   = ceil(grid / concurrent_blocks) / (grid / concurrent_blocks)
 *
 * The wave factor is the mechanism behind the paper's Finding 5:
 * a grid tiled for one SM count can leave tail waves idle on a
 * platform with a different SM count, making individual kernels
 * slower on the *bigger* device.
 */

#include "gpusim/device.hh"
#include "gpusim/kernel.hh"

namespace edgert::gpusim {

/** Wave-quantization inefficiency factor (>= 1). */
double waveFactor(std::int64_t grid_blocks, double concurrent_blocks);

/**
 * Compute-phase time of a kernel when granted `alloc_sms` SMs
 * (fractional allocations model partial-wave sharing).
 */
double kernelComputeSeconds(const DeviceSpec &spec, const KernelDesc &k,
                            double alloc_sms);

/**
 * Extra-traffic multiplier from L2 capacity sharing (>= 1); grows
 * when the launch's concurrent tile footprint exceeds the 512 KB L2.
 */
double l2SpillFactor(const DeviceSpec &spec, const KernelDesc &k);

/** Memory-phase time at full DRAM bandwidth (incl. L2 spill). */
double kernelMemSeconds(const DeviceSpec &spec, const KernelDesc &k);

/**
 * Solo (whole-machine) kernel duration excluding launch overhead.
 */
double soloKernelSeconds(const DeviceSpec &spec, const KernelDesc &k);

/**
 * Host-to-device copy duration.
 * @param transfers Number of discrete cudaMemcpy calls batched into
 *        this operation; each pays the per-transfer driver overhead.
 */
double memcpySeconds(const DeviceSpec &spec, std::uint64_t bytes,
                     int transfers);

} // namespace edgert::gpusim

#endif // EDGERT_GPUSIM_TIMING_HH
