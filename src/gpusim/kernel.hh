#ifndef EDGERT_GPUSIM_KERNEL_HH
#define EDGERT_GPUSIM_KERNEL_HH

/**
 * @file
 * Descriptor of one simulated CUDA kernel launch.
 *
 * A KernelDesc carries everything the timing model and the profiler
 * need: launch geometry, arithmetic and memory work, occupancy, and
 * the per-launch instruction/ld-st counters the BSP performance
 * model (paper §VI-B) consumes. Tactic generators in the core
 * library produce these from fused layer shapes.
 */

#include <cstdint>
#include <string>

namespace edgert::gpusim {

/**
 * One kernel launch: name, geometry, and modeled work.
 */
struct KernelDesc
{
    std::string name;

    // --- Launch geometry ---
    std::int64_t grid_blocks = 1;
    std::int64_t block_threads = 128;
    std::int64_t max_blocks_per_sm = 2; //!< occupancy limit

    // --- Work ---
    std::int64_t flops = 0;       //!< arithmetic work (2*MACs)
    std::int64_t dram_bytes = 0;  //!< post-cache DRAM traffic
    bool tensor_core = false;     //!< uses HMMA tensor-core path
    double efficiency = 0.5;      //!< tactic tile/pipe efficiency

    /**
     * Per-block L2 working-set footprint (KB). When the concurrent
     * blocks of a launch overflow the shared 512 KB L2, the excess
     * respills to DRAM (DeviceSpec::l2_spill_coeff) — the mechanism
     * that lets the same kernel run slower on the 8-SM AGX than on
     * the 6-SM NX (paper Table XI).
     */
    double tile_kb = 32.0;

    /**
     * Strided / scattered global-access pattern (depthwise conv,
     * radix sort, LRN): each access uses only ~32 bytes of the DRAM
     * burst, so platforms with wider buses waste a larger fraction
     * of their bandwidth — another way the same kernel runs slower
     * on AGX (256-bit bus) than NX (128-bit).
     */
    bool strided_access = false;

    // --- Profiler counters (aggregate over all threads) ---
    std::int64_t instructions = 0;
    std::int64_t ldg = 0;      //!< global loads
    std::int64_t stg = 0;      //!< global stores
    std::int64_t lds = 0;      //!< shared loads
    std::int64_t sts = 0;      //!< shared stores
    std::int64_t l1_hits = 0;
    std::int64_t l2_hits = 0;

    /** Total SM slots this launch can occupy at once. */
    std::int64_t
    maxConcurrentBlocks(int sm_count) const
    {
        return static_cast<std::int64_t>(sm_count) * max_blocks_per_sm;
    }
};

} // namespace edgert::gpusim

#endif // EDGERT_GPUSIM_KERNEL_HH
