#include "fleet/spec.hh"

#include <set>

#include "common/cliflags.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "serve/server.hh"

namespace edgert::fleet {

std::string
DeviceClass::label() const
{
    if (clock_ghz <= 0.0)
        return device;
    return device + "@" + jsonNumber(clock_ghz);
}

const gpusim::DeviceSpec &
ResolvedFleet::specOf(int node) const
{
    return classes
        .at(static_cast<std::size_t>(
            nodes.at(static_cast<std::size_t>(node)).dev_class))
        .spec;
}

ResolvedFleet
resolveFleet(std::vector<NodeGroup> groups)
{
    if (groups.empty())
        fatal("fleet needs at least one node group");
    ResolvedFleet out;
    std::set<std::string> names;
    for (std::size_t g = 0; g < groups.size(); g++) {
        NodeGroup &grp = groups[g];
        if (grp.count <= 0)
            fatal("fleet group '", grp.name.empty() ? grp.device
                                                    : grp.name,
                  "' needs a positive node count (got ", grp.count,
                  ")");
        if (grp.name.empty())
            grp.name = grp.device + std::to_string(g);
        if (!names.insert(grp.name).second)
            fatal("duplicate fleet group name '", grp.name, "'");

        gpusim::DeviceSpec spec = serve::parseDevice(grp.device);
        if (grp.clock_ghz != 0.0) {
            if (grp.clock_ghz < 0.0)
                fatal("fleet group '", grp.name,
                      "': clock must be positive (got ",
                      grp.clock_ghz, ")");
            spec = spec.withClock(grp.clock_ghz);
        }

        int dev_class = -1;
        for (std::size_t c = 0; c < out.classes.size(); c++)
            if (out.classes[c].device == grp.device &&
                out.classes[c].clock_ghz == grp.clock_ghz)
                dev_class = static_cast<int>(c);
        if (dev_class < 0) {
            DeviceClass dc;
            dc.device = grp.device;
            dc.clock_ghz = grp.clock_ghz;
            dc.spec = spec;
            dev_class = static_cast<int>(out.classes.size());
            out.classes.push_back(std::move(dc));
        }

        for (int i = 0; i < grp.count; i++) {
            FleetNode n;
            n.id = static_cast<int>(out.nodes.size());
            n.group = static_cast<int>(g);
            n.dev_class = dev_class;
            n.name = grp.name + "/" + std::to_string(i);
            out.nodes.push_back(std::move(n));
        }
    }
    out.groups = std::move(groups);
    return out;
}

NodeGroup
parseNodeGroup(const std::string &spec)
{
    auto parts = split(spec, ':');
    if (parts.size() < 2 || parts[0].empty())
        fatal("bad fleet group spec '", spec,
              "' (expected <device>:<count>[:clock=..][:name=..])");
    NodeGroup grp;
    grp.device = parts[0];
    {
        auto r = parseInt64(parts[1]);
        if (!r.ok())
            fatal("bad fleet group count '", parts[1],
                  "': ", r.status().message());
        grp.count = static_cast<int>(*r);
    }
    for (std::size_t i = 2; i < parts.size(); i++) {
        auto eq = parts[i].find('=');
        if (eq == std::string::npos)
            fatal("bad fleet group option '", parts[i],
                  "' (expected key=value)");
        std::string k = parts[i].substr(0, eq);
        std::string v = parts[i].substr(eq + 1);
        if (k == "clock") {
            auto r = parseDouble(v);
            if (!r.ok())
                fatal("bad fleet group clock '", v,
                      "': ", r.status().message());
            grp.clock_ghz = *r;
        } else if (k == "name") {
            grp.name = v;
        } else {
            fatal("unknown fleet group option '", k, "'");
        }
    }
    return grp;
}

} // namespace edgert::fleet
