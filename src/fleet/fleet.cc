#include "fleet/fleet.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/threadpool.hh"
#include "core/builder.hh"
#include "core/timing_cache.hh"
#include "deploy/cohort.hh"
#include "gpusim/sim.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/context.hh"
#include "serve/batcher.hh"
#include "serve/predictor.hh"
#include "serve/request.hh"
#include "serve/scheduler.hh"
#include "serve/server.hh"
#include "watch/rollup.hh"

namespace edgert::fleet {

namespace {

/** Fleet control-plane discrete event. */
struct Event
{
    enum Kind { kArrival, kTimeout, kPredFree, kFail, kRejoin, kStage };

    double t = 0.0;
    std::int64_t seq = 0; //!< push order: total, deterministic tie-break
    Kind kind = kArrival;
    int target = 0; //!< model, (node, model) slot, instance, node, rollout
    std::int64_t req = -1; //!< request id or rollout stage index
};

struct EventAfter
{
    bool operator()(const Event &a, const Event &b) const
    {
        if (a.t != b.t)
            return a.t > b.t;
        return a.seq > b.seq;
    }
};

/** One engine instance: a stream-bound context slot on one node. */
struct FleetInstance
{
    int node = -1;
    int model = -1;
    int stream = 0;
    double predicted_free_s = 0.0;
    std::vector<serve::PlannedDispatch> plan;
};

/** One engine build generation: per-class sets and calibrations. */
struct FleetVersion
{
    std::uint64_t build_id = 0;
    std::vector<serve::EngineSet> sets;       //!< per class
    std::vector<std::vector<double>> svc;     //!< per class, per engine
};

/** Mutable per-rollout progress. */
struct RolloutState
{
    int model = -1;
    bool prepared = false;
    bool halted = false;
    int cand_version = -1;
    std::vector<bool> class_ok; //!< per class (false when unused)
    std::vector<bool> switched; //!< per node
    std::unique_ptr<deploy::CohortPlanner> planner;
};

} // namespace

FleetReport
runFleet(const FleetConfig &cfg)
{
    // ------------------------------------------------------------
    // Validation and fleet resolution.
    // ------------------------------------------------------------
    if (cfg.models.empty())
        fatal("fleet config has no models");
    if (cfg.duration_s <= 0.0)
        fatal("fleet duration must be positive (got ",
              cfg.duration_s, ")");
    if (cfg.vnodes < 1)
        fatal("fleet vnodes must be >= 1 (got ", cfg.vnodes, ")");
    if (cfg.sojourn_choices < 1)
        fatal("fleet sojourn_choices must be >= 1 (got ",
              cfg.sojourn_choices, ")");
    if (cfg.remap_probes < 1)
        fatal("fleet remap_probes must be >= 1 (got ",
              cfg.remap_probes, ")");
    for (std::size_t i = 0; i < cfg.models.size(); i++)
        for (std::size_t j = i + 1; j < cfg.models.size(); j++)
            if (cfg.models[i].model == cfg.models[j].model)
                fatal("duplicate fleet model '", cfg.models[i].model,
                      "'");

    ResolvedFleet fleet = resolveFleet(cfg.groups);
    const int n_nodes = static_cast<int>(fleet.nodes.size());
    const int n_models = static_cast<int>(cfg.models.size());
    const int n_classes = static_cast<int>(fleet.classes.size());

    for (const FailureSpec &f : cfg.failures) {
        if (f.node < 0 || f.node >= n_nodes)
            fatal("failure names node ", f.node,
                  " outside the fleet (", n_nodes, " nodes)");
        if (f.fail_s < 0.0)
            fatal("failure time must be non-negative (got ",
                  f.fail_s, ")");
        if (f.rejoin_s >= 0.0 && f.rejoin_s <= f.fail_s)
            fatal("rejoin time must be after the failure (fail ",
                  f.fail_s, ", rejoin ", f.rejoin_s, ")");
    }

    auto modelIndex = [&](const std::string &name) {
        for (int m = 0; m < n_models; m++)
            if (cfg.models[static_cast<std::size_t>(m)].model ==
                name)
                return m;
        fatal("unknown fleet model '", name, "'");
    };
    for (const RolloutSpec &ro : cfg.rollouts) {
        modelIndex(ro.model);
        if (ro.stages.empty())
            fatal("rollout for '", ro.model, "' has no stages");
        double prev = -1.0;
        for (const RolloutStage &st : ro.stages) {
            if (st.t_s < 0.0 || st.t_s <= prev)
                fatal("rollout stages for '", ro.model,
                      "' must have ascending non-negative times");
            if (st.pct <= 0.0 || st.pct > 100.0)
                fatal("rollout stage pct must be in (0, 100] (got ",
                      st.pct, ")");
            prev = st.t_s;
        }
    }

    EDGERT_SPAN("fleet_run",
                {{"nodes", std::to_string(n_nodes)},
                 {"models", std::to_string(n_models)},
                 {"classes", std::to_string(n_classes)}});

    // ------------------------------------------------------------
    // Builds: engines + calibration once per (class, model), shared
    // read-only by every node of the class. One timing cache per
    // class so rebuilds within a class stay warm.
    // ------------------------------------------------------------
    std::vector<serve::BatchPolicy> policies;
    std::vector<std::vector<int>> ladders;
    for (int m = 0; m < n_models; m++) {
        policies.push_back(
            cfg.models[static_cast<std::size_t>(m)].batching);
        ladders.push_back(serve::engineBatchLadder(
            policies.back().max_batch));
    }

    std::vector<core::TimingCache> caches(
        static_cast<std::size_t>(n_classes));

    // Build one generation of model m: engines + calibrated service
    // predictions for every class in `class_mask` (null = all).
    auto buildVersion = [&](int m, std::uint64_t build_id,
                            bool use_cache,
                            const std::vector<bool> *class_mask)
        -> FleetVersion {
        const auto &mc = cfg.models[static_cast<std::size_t>(m)];
        EDGERT_SPAN("fleet_build",
                    {{"model", mc.model},
                     {"build", std::to_string(build_id)}});
        FleetVersion ver;
        ver.build_id = build_id;
        for (int c = 0; c < n_classes; c++) {
            serve::EngineSet set;
            std::vector<double> svc_c;
            bool wanted =
                !class_mask ||
                (*class_mask)[static_cast<std::size_t>(c)];
            if (wanted) {
                const auto &spec =
                    fleet.classes[static_cast<std::size_t>(c)].spec;
                core::BuilderConfig bcfg;
                bcfg.precision = mc.precision;
                bcfg.calibration_seed = mc.calibration_seed;
                bcfg.build_id = build_id;
                bcfg.jobs = 1;
                bcfg.timing_cache =
                    use_cache
                        ? &caches[static_cast<std::size_t>(c)]
                        : nullptr;
                core::Builder builder(spec, bcfg);
                for (int b : ladders[static_cast<std::size_t>(m)]) {
                    set.engines.push_back(builder.build(
                        nn::buildZooModel(mc.model, b)));
                    set.batches.push_back(b);
                }
                serve::LatencyPredictor pred(spec);
                for (const auto &eng : set.engines) {
                    pred.calibrate(eng);
                    svc_c.push_back(
                        pred.predictServiceSeconds(eng));
                }
            }
            ver.sets.push_back(std::move(set));
            ver.svc.push_back(std::move(svc_c));
        }
        return ver;
    };

    // versions[m]: generation list; index 0 is the incumbent.
    std::vector<std::vector<FleetVersion>> versions(
        static_cast<std::size_t>(n_models));
    for (int m = 0; m < n_models; m++)
        versions[static_cast<std::size_t>(m)].push_back(
            buildVersion(m, cfg.build_id, true, nullptr));

    // ------------------------------------------------------------
    // Placement: rank classes (capability vs calibrated — F4/F5
    // make these disagree) and fill nodes in rank order up to each
    // model's nodes_pct, bounded by per-node context RAM.
    // ------------------------------------------------------------
    std::vector<std::vector<std::string>> placement_rank_labels(
        static_cast<std::size_t>(n_models));
    std::vector<std::vector<bool>> serves(
        static_cast<std::size_t>(n_models));
    for (int m = 0; m < n_models; m++) {
        std::vector<double> svc1;
        for (int c = 0; c < n_classes; c++)
            svc1.push_back(
                versions[static_cast<std::size_t>(m)][0]
                    .svc[static_cast<std::size_t>(c)]
                    .front());
        auto rank = rankClasses(
            cfg.placement, fleet.classes, svc1,
            cfg.models[static_cast<std::size_t>(m)].precision);
        for (int c : rank)
            placement_rank_labels[static_cast<std::size_t>(m)]
                .push_back(
                    fleet.classes[static_cast<std::size_t>(c)]
                        .label());
        serves[static_cast<std::size_t>(m)] = selectNodes(
            fleet, rank,
            cfg.models[static_cast<std::size_t>(m)].nodes_pct);
    }

    // Instances, node-major then model order; per-node RAM budget
    // bounds how many contexts a node can actually host.
    std::vector<FleetInstance> instances;
    std::vector<std::vector<int>> insts_by_nm(
        static_cast<std::size_t>(n_nodes) *
        static_cast<std::size_t>(n_models));
    auto nmSlot = [&](int node, int m) {
        return static_cast<std::size_t>(node) *
                   static_cast<std::size_t>(n_models) +
               static_cast<std::size_t>(m);
    };
    for (int node = 0; node < n_nodes; node++) {
        const FleetNode &fn =
            fleet.nodes[static_cast<std::size_t>(node)];
        const auto &spec = fleet.specOf(node);
        auto budget = static_cast<std::int64_t>(
            cfg.ram_fraction * spec.ram_gb * 1e9);
        int streams_made = 0;
        for (int m = 0; m < n_models; m++) {
            if (!serves[static_cast<std::size_t>(m)]
                       [static_cast<std::size_t>(node)])
                continue;
            std::int64_t fp =
                versions[static_cast<std::size_t>(m)][0]
                    .sets[static_cast<std::size_t>(fn.dev_class)]
                    .maxFootprintBytes();
            int want = cfg.models[static_cast<std::size_t>(m)]
                           .instances_per_node;
            for (int i = 0; i < want; i++) {
                if (fp > budget)
                    break;
                budget -= fp;
                FleetInstance inst;
                inst.node = node;
                inst.model = m;
                inst.stream = streams_made++;
                insts_by_nm[nmSlot(node, m)].push_back(
                    static_cast<int>(instances.size()));
                instances.push_back(std::move(inst));
            }
        }
    }

    // ------------------------------------------------------------
    // Routing rings: one per model over the nodes actually hosting
    // an instance of it.
    // ------------------------------------------------------------
    std::vector<HashRing> rings;
    std::vector<int> serving_nodes(static_cast<std::size_t>(n_models),
                                   0);
    for (int m = 0; m < n_models; m++) {
        rings.emplace_back(cfg.seed, cfg.vnodes);
        std::vector<int> members;
        for (int node = 0; node < n_nodes; node++)
            if (!insts_by_nm[nmSlot(node, m)].empty())
                members.push_back(node);
        rings.back().reset(members);
        serving_nodes[static_cast<std::size_t>(m)] =
            static_cast<int>(members.size());
        if (members.empty())
            warn("EdgeFleet: model '",
                 cfg.models[static_cast<std::size_t>(m)].model,
                 "' placed on no node; its traffic will be shed");
    }

    // ------------------------------------------------------------
    // Workload: per-model fleet-wide arrival streams from forked
    // Rng streams, merged into one id-ordered request table.
    // ------------------------------------------------------------
    std::vector<serve::Request> requests;
    {
        Rng root(cfg.seed);
        Rng workload_rng = root.fork("workload");
        std::vector<std::pair<double, int>> merged;
        for (int m = 0; m < n_models; m++) {
            Rng rng = workload_rng.fork(
                static_cast<std::uint64_t>(m));
            for (double t : serve::generateArrivals(
                     cfg.models[static_cast<std::size_t>(m)]
                         .arrivals,
                     cfg.duration_s, rng))
                merged.emplace_back(t, m);
        }
        std::sort(merged.begin(), merged.end());
        requests.reserve(merged.size());
        for (const auto &[t, m] : merged) {
            serve::Request r;
            r.id = static_cast<std::int64_t>(requests.size());
            r.model = m;
            r.arrival_s = t;
            r.slo_ms =
                cfg.models[static_cast<std::size_t>(m)].slo_ms;
            requests.push_back(r);
        }
    }

    // ------------------------------------------------------------
    // Phase 1 — fleet control loop. Per-(node, model) queues and
    // batch timeouts; per-node burn-rate SLO trackers fed by
    // control-plane-observable outcomes (sheds and predicted
    // deadline misses) roll up fleet-wide and drive quarantine.
    // ------------------------------------------------------------
    std::vector<serve::RequestQueue> queues(
        static_cast<std::size_t>(n_nodes) *
        static_cast<std::size_t>(n_models));
    std::vector<serve::DynamicBatcher> batchers;
    for (int m = 0; m < n_models; m++)
        batchers.emplace_back(
            policies[static_cast<std::size_t>(m)]);
    std::vector<std::int64_t> timeout_armed(queues.size(), -1);

    // Active build generation per (node, model); rollouts splice
    // cohorts forward while in-flight incumbent batches drain on
    // their own contexts.
    std::vector<int> active_ver(queues.size(), 0);

    std::vector<bool> failed(static_cast<std::size_t>(n_nodes),
                             false);
    std::vector<bool> quarantined(static_cast<std::size_t>(n_nodes),
                                  false);

    std::vector<watch::SloTracker> trackers;
    for (int node = 0; node < n_nodes; node++)
        trackers.emplace_back(
            fleet.nodes[static_cast<std::size_t>(node)].name,
            cfg.slo);
    watch::AlertRollup rollup;

    std::priority_queue<Event, std::vector<Event>, EventAfter> evq;
    std::int64_t seq = 0;
    for (const auto &r : requests) {
        Event e;
        e.t = r.arrival_s;
        e.seq = seq++;
        e.kind = Event::kArrival;
        e.target = r.model;
        e.req = r.id;
        evq.push(e);
    }
    for (std::size_t f = 0; f < cfg.failures.size(); f++) {
        const FailureSpec &fs = cfg.failures[f];
        Event e;
        e.t = fs.fail_s;
        e.seq = seq++;
        e.kind = Event::kFail;
        e.target = fs.node;
        evq.push(e);
        if (fs.rejoin_s >= 0.0) {
            Event r;
            r.t = fs.rejoin_s;
            r.seq = seq++;
            r.kind = Event::kRejoin;
            r.target = fs.node;
            evq.push(r);
        }
    }
    std::vector<RolloutState> ro_states(cfg.rollouts.size());
    std::vector<RolloutStats> ro_stats(cfg.rollouts.size());
    for (std::size_t ro = 0; ro < cfg.rollouts.size(); ro++) {
        const RolloutSpec &spec = cfg.rollouts[ro];
        ro_states[ro].model = modelIndex(spec.model);
        ro_stats[ro].model = spec.model;
        ro_stats[ro].candidate_build_id = spec.candidate_build_id;
        for (std::size_t s = 0; s < spec.stages.size(); s++) {
            Event e;
            e.t = spec.stages[s].t_s;
            e.seq = seq++;
            e.kind = Event::kStage;
            e.target = static_cast<int>(ro);
            e.req = static_cast<std::int64_t>(s);
            evq.push(e);
        }
    }

    std::vector<FleetEvent> events;
    std::vector<std::int64_t> model_shed(
        static_cast<std::size_t>(n_models), 0);
    std::vector<std::int64_t> model_batches(
        static_cast<std::size_t>(n_models), 0);
    std::vector<std::int64_t> model_dispatched(
        static_cast<std::size_t>(n_models), 0);
    // Next plan entry whose predicted completion is unobserved.
    std::vector<std::size_t> next_obs;

    auto ladderOf = [&](int m) -> const std::vector<int> & {
        return ladders[static_cast<std::size_t>(m)];
    };
    auto svcOf = [&](int node, int m) -> const std::vector<double> & {
        int c = fleet.nodes[static_cast<std::size_t>(node)]
                    .dev_class;
        int v = active_ver[nmSlot(node, m)];
        return versions[static_cast<std::size_t>(m)]
                       [static_cast<std::size_t>(v)]
                           .svc[static_cast<std::size_t>(c)];
    };

    auto viewOf = [&](int node, int m) {
        serve::BackendView view;
        view.ladder = ladderOf(m);
        const auto &svc = svcOf(node, m);
        for (int idx : insts_by_nm[nmSlot(node, m)]) {
            const FleetInstance &inst =
                instances[static_cast<std::size_t>(idx)];
            serve::BackendView::InstanceView iv;
            iv.free_s = inst.predicted_free_s;
            iv.service_s = svc;
            view.instances.push_back(std::move(iv));
        }
        return view;
    };

    auto tryDispatch = [&](int node, int m, double t) {
        if (failed[static_cast<std::size_t>(node)] ||
            quarantined[static_cast<std::size_t>(node)])
            return;
        auto slot = nmSlot(node, m);
        auto &q = queues[slot];
        const auto &batcher =
            batchers[static_cast<std::size_t>(m)];
        const auto &svc = svcOf(node, m);
        int c = fleet.nodes[static_cast<std::size_t>(node)]
                    .dev_class;
        int v = active_ver[slot];
        const serve::EngineSet &set =
            versions[static_cast<std::size_t>(m)]
                    [static_cast<std::size_t>(v)]
                        .sets[static_cast<std::size_t>(c)];
        while (!q.empty()) {
            // Earliest predicted-free instance (ties: lowest idx).
            int best = -1;
            for (int idx : insts_by_nm[slot]) {
                const FleetInstance &inst =
                    instances[static_cast<std::size_t>(idx)];
                if (inst.predicted_free_s > t)
                    continue;
                if (best < 0 ||
                    inst.predicted_free_s <
                        instances[static_cast<std::size_t>(best)]
                            .predicted_free_s)
                    best = idx;
            }
            if (best < 0)
                break;
            int cut = batcher.decide(
                q.size(), q.oldestArrivalSeconds(), t);
            if (cut == 0)
                break;
            FleetInstance &inst =
                instances[static_cast<std::size_t>(best)];
            int eidx = set.indexFor(cut);
            double svc_s = svc[static_cast<std::size_t>(eidx)];
            serve::PlannedDispatch pd;
            pd.t_s = t;
            pd.engine_idx = eidx;
            pd.version = v;
            pd.batch = cut;
            pd.request_ids = q.cut(cut);
            pd.predicted_service_s = svc_s;
            for (std::int64_t id : pd.request_ids) {
                serve::Request &r =
                    requests[static_cast<std::size_t>(id)];
                r.dispatch_s = t;
                r.batch = cut;
                r.device = node;
                r.instance = best;
                r.version = v;
            }
            inst.plan.push_back(std::move(pd));
            inst.predicted_free_s = t + svc_s;
            Event e;
            e.t = inst.predicted_free_s;
            e.seq = seq++;
            e.kind = Event::kPredFree;
            e.target = best;
            evq.push(e);
            model_batches[static_cast<std::size_t>(m)]++;
            model_dispatched[static_cast<std::size_t>(m)] += cut;
        }
        if (!q.empty() && q.frontId() != timeout_armed[slot]) {
            timeout_armed[slot] = q.frontId();
            Event e;
            e.t = batcher.deadlineFor(q.oldestArrivalSeconds());
            e.seq = seq++;
            e.kind = Event::kTimeout;
            e.target = static_cast<int>(slot);
            evq.push(e);
        }
    };

    // Quarantine can fire mid-observation, so declare first.
    std::function<void(int, const char *, double)> quarantineNode;

    auto trackerObserve = [&](int node, double t, bool bad) {
        watch::Alert a =
            trackers[static_cast<std::size_t>(node)].observe(t,
                                                             bad);
        if (a.t_s < 0.0)
            return; // no tier transition
        const FleetNode &fn =
            fleet.nodes[static_cast<std::size_t>(node)];
        rollup.observe(
            t, node,
            fleet.groups[static_cast<std::size_t>(fn.group)].name,
            a.tier, a.burn);
        if (a.tier == watch::Alert::kPage &&
            cfg.quarantine_on_page &&
            !quarantined[static_cast<std::size_t>(node)] &&
            !failed[static_cast<std::size_t>(node)])
            quarantineNode(node, "slo_page", t);
    };

    // Route one request; `admit` is false for re-routes (a request
    // admitted once is never shed by a membership change).
    std::function<void(int, std::int64_t, double, bool)>
        routeRequest = [&](int m, std::int64_t id, double t,
                           bool admit) {
            serve::Request &r =
                requests[static_cast<std::size_t>(id)];
            HashRing &ring = rings[static_cast<std::size_t>(m)];
            if (ring.empty()) {
                r.outcome = serve::Outcome::kShed;
                model_shed[static_cast<std::size_t>(m)]++;
                return;
            }
            std::uint64_t key = ring.keyFor(id);
            int node = -1;
            if (cfg.route_policy == RoutePolicy::kHash) {
                node = ring.route(key);
            } else {
                auto cands =
                    ring.successors(key, cfg.sojourn_choices);
                double best = 0.0;
                for (int cand : cands) {
                    auto &cq = queues[nmSlot(cand, m)];
                    double est = serve::predictSojournSeconds(
                        viewOf(cand, m),
                        policies[static_cast<std::size_t>(m)],
                        static_cast<int>(cq.size()), t,
                        cq.rateHz());
                    if (node < 0 || est < best ||
                        (est == best && cand < node)) {
                        node = cand;
                        best = est;
                    }
                }
            }
            auto slot = nmSlot(node, m);
            auto &q = queues[slot];
            q.observeArrival(t);
            if (admit && cfg.admission_control) {
                double est_s = serve::predictSojournSeconds(
                    viewOf(node, m),
                    policies[static_cast<std::size_t>(m)],
                    static_cast<int>(q.size()), t, q.rateHz());
                if (est_s * 1e3 > r.slo_ms) {
                    r.outcome = serve::Outcome::kShed;
                    model_shed[static_cast<std::size_t>(m)]++;
                    trackerObserve(node, t, true);
                    return;
                }
            }
            q.push(id, t);
            tryDispatch(node, m, t);
        };

    // Remove a node from every ring and re-route its queued
    // requests (in-flight dispatches stay planned and drain in the
    // replay — nothing is dropped). Returns (rerouted, remap_pct).
    auto removeAndReroute =
        [&](int node, double t) -> std::pair<std::int64_t, double> {
        std::int64_t moved = 0;
        double remap_sum = 0.0;
        int remap_n = 0;
        for (int m = 0; m < n_models; m++) {
            HashRing &ring = rings[static_cast<std::size_t>(m)];
            if (!ring.contains(node))
                continue;
            HashRing before = ring;
            ring.remove(node);
            remap_sum += remapPct(before, ring, cfg.remap_probes);
            remap_n++;
            auto &q = queues[nmSlot(node, m)];
            timeout_armed[nmSlot(node, m)] = -1;
            if (q.empty())
                continue;
            auto ids = q.cut(static_cast<int>(q.size()));
            for (std::int64_t id : ids) {
                moved++;
                routeRequest(m, id, t, false);
            }
        }
        return {moved,
                remap_n > 0 ? remap_sum /
                                  static_cast<double>(remap_n)
                            : 0.0};
    };

    quarantineNode = [&](int node, const char *reason, double t) {
        quarantined[static_cast<std::size_t>(node)] = true;
        auto [moved, remap] = removeAndReroute(node, t);
        FleetEvent ev;
        ev.t_s = t;
        ev.node = node;
        ev.node_name =
            fleet.nodes[static_cast<std::size_t>(node)].name;
        ev.kind = "quarantine";
        ev.reason = reason;
        ev.rerouted = moved;
        ev.remap_pct = remap;
        events.push_back(std::move(ev));
        warn("EdgeFleet: quarantined node ",
             fleet.nodes[static_cast<std::size_t>(node)].name,
             " at t=", t, "s (", reason, "), rerouted ", moved,
             " queued requests");
    };

    // Prepare a rollout at its first executed stage: build the
    // candidate per serving class (no timing-cache reuse, so the
    // rebuild drifts naturally per F2/F6), judge each class with
    // the DriftGate, and freeze the cohort draw over the nodes
    // eligible right now.
    auto prepareRollout = [&](std::size_t ro, double t) {
        const RolloutSpec &spec = cfg.rollouts[ro];
        RolloutState &st = ro_states[ro];
        const int m = st.model;
        EDGERT_SPAN("fleet_rollout",
                    {{"model", spec.model},
                     {"build",
                      std::to_string(spec.candidate_build_id)}});
        std::vector<bool> class_mask(
            static_cast<std::size_t>(n_classes), false);
        for (int node = 0; node < n_nodes; node++)
            if (!insts_by_nm[nmSlot(node, m)].empty())
                class_mask[static_cast<std::size_t>(
                    fleet.nodes[static_cast<std::size_t>(node)]
                        .dev_class)] = true;
        FleetVersion cand = buildVersion(
            m, spec.candidate_build_id, false, &class_mask);
        deploy::DriftGate gate(spec.gate);
        st.class_ok.assign(static_cast<std::size_t>(n_classes),
                           false);
        for (int c = 0; c < n_classes; c++) {
            if (!class_mask[static_cast<std::size_t>(c)])
                continue;
            const auto &inc =
                versions[static_cast<std::size_t>(m)][0]
                    .sets[static_cast<std::size_t>(c)]
                    .engines.front();
            const auto &cnd =
                cand.sets[static_cast<std::size_t>(c)]
                    .engines.front();
            deploy::DriftVerdict v = gate.evaluate(inc, cnd);
            st.class_ok[static_cast<std::size_t>(c)] = v.accepted;
            ClassVerdictStats cs;
            cs.dev_class =
                fleet.classes[static_cast<std::size_t>(c)].label();
            cs.accepted = v.accepted;
            cs.reason = v.reason;
            cs.disagreement_pct = v.disagreement_pct;
            cs.kernel_remap_pct = v.kernel_remap_pct;
            ro_stats[ro].verdicts.push_back(std::move(cs));
        }
        versions[static_cast<std::size_t>(m)].push_back(
            std::move(cand));
        st.cand_version = static_cast<int>(
                              versions[static_cast<std::size_t>(m)]
                                  .size()) -
                          1;
        std::vector<int> eligible;
        for (int node = 0; node < n_nodes; node++)
            if (!insts_by_nm[nmSlot(node, m)].empty() &&
                !quarantined[static_cast<std::size_t>(node)] &&
                !failed[static_cast<std::size_t>(node)])
                eligible.push_back(node);
        st.planner = std::make_unique<deploy::CohortPlanner>(
            eligible,
            mix64(hashCombine(
                hashCombine(cfg.seed, hashString("rollout")),
                static_cast<std::uint64_t>(ro))));
        st.switched.assign(static_cast<std::size_t>(n_nodes),
                           false);
        st.prepared = true;
        inform("EdgeFleet: rollout of '", spec.model, "' build ",
             spec.candidate_build_id, " prepared at t=", t, "s (",
             st.planner->memberCount(), " eligible nodes)");
    };

    {
        EDGERT_SPAN("fleet_control",
                    {{"requests",
                      std::to_string(requests.size())}});
        while (!evq.empty()) {
            Event e = evq.top();
            evq.pop();
            switch (e.kind) {
              case Event::kArrival:
                  routeRequest(e.target, e.req, e.t, true);
                  break;
              case Event::kTimeout: {
                  auto slot = static_cast<std::size_t>(e.target);
                  tryDispatch(
                      static_cast<int>(slot /
                                       static_cast<std::size_t>(
                                           n_models)),
                      static_cast<int>(slot %
                                       static_cast<std::size_t>(
                                           n_models)),
                      e.t);
                  break;
              }
              case Event::kPredFree: {
                  auto ii = static_cast<std::size_t>(e.target);
                  if (next_obs.size() <= ii)
                      next_obs.resize(instances.size(), 0);
                  FleetInstance &inst = instances[ii];
                  // Predicted completion of the next unobserved
                  // dispatch: feed each request's predicted SLO
                  // verdict to the node's burn-rate tracker (the
                  // control plane cannot see measured latencies —
                  // those exist only after the replay).
                  std::size_t k = next_obs[ii]++;
                  std::vector<std::int64_t> ids =
                      inst.plan[k].request_ids;
                  for (std::int64_t id : ids) {
                      const serve::Request &r =
                          requests[static_cast<std::size_t>(id)];
                      bool bad =
                          (e.t - r.arrival_s) * 1e3 > r.slo_ms;
                      trackerObserve(inst.node, e.t, bad);
                  }
                  tryDispatch(inst.node, inst.model, e.t);
                  break;
              }
              case Event::kFail: {
                  int node = e.target;
                  if (failed[static_cast<std::size_t>(node)])
                      break;
                  failed[static_cast<std::size_t>(node)] = true;
                  auto [moved, remap] =
                      removeAndReroute(node, e.t);
                  FleetEvent ev;
                  ev.t_s = e.t;
                  ev.node = node;
                  ev.node_name =
                      fleet.nodes[static_cast<std::size_t>(node)]
                          .name;
                  ev.kind = "fail";
                  ev.rerouted = moved;
                  ev.remap_pct = remap;
                  events.push_back(std::move(ev));
                  break;
              }
              case Event::kRejoin: {
                  int node = e.target;
                  if (!failed[static_cast<std::size_t>(node)])
                      break;
                  failed[static_cast<std::size_t>(node)] = false;
                  double remap_sum = 0.0;
                  int remap_n = 0;
                  if (!quarantined[static_cast<std::size_t>(
                          node)]) {
                      for (int m = 0; m < n_models; m++) {
                          if (insts_by_nm[nmSlot(node, m)].empty())
                              continue;
                          HashRing &ring =
                              rings[static_cast<std::size_t>(m)];
                          HashRing before = ring;
                          ring.add(node);
                          remap_sum += remapPct(before, ring,
                                                cfg.remap_probes);
                          remap_n++;
                      }
                  }
                  FleetEvent ev;
                  ev.t_s = e.t;
                  ev.node = node;
                  ev.node_name =
                      fleet.nodes[static_cast<std::size_t>(node)]
                          .name;
                  ev.kind = "rejoin";
                  ev.remap_pct =
                      remap_n > 0
                          ? remap_sum /
                                static_cast<double>(remap_n)
                          : 0.0;
                  events.push_back(std::move(ev));
                  break;
              }
              case Event::kStage: {
                  auto ro = static_cast<std::size_t>(e.target);
                  const RolloutSpec &spec = cfg.rollouts[ro];
                  RolloutState &st = ro_states[ro];
                  const RolloutStage &stage =
                      spec.stages[static_cast<std::size_t>(e.req)];
                  RolloutStageStats ss;
                  ss.t_s = stage.t_s;
                  ss.pct = stage.pct;
                  if (st.halted) {
                      // An earlier stage quarantined nodes: the
                      // canary absorbed the bad build; leave the
                      // rest of the fleet on the incumbent.
                      ro_stats[ro].stages.push_back(ss);
                      break;
                  }
                  if (!st.prepared)
                      prepareRollout(ro, e.t);
                  ss.executed = true;
                  auto cohort = st.planner->cohort(stage.pct);
                  ss.cohort = static_cast<int>(cohort.size());
                  for (int node : cohort) {
                      if (st.switched[static_cast<std::size_t>(
                              node)] ||
                          quarantined[static_cast<std::size_t>(
                              node)] ||
                          failed[static_cast<std::size_t>(node)])
                          continue;
                      int c = fleet
                                  .nodes[static_cast<std::size_t>(
                                      node)]
                                  .dev_class;
                      if (st.class_ok[static_cast<std::size_t>(
                              c)]) {
                          active_ver[nmSlot(node, st.model)] =
                              st.cand_version;
                          st.switched[static_cast<std::size_t>(
                              node)] = true;
                          ss.switched++;
                          tryDispatch(node, st.model, e.t);
                      } else {
                          quarantineNode(node, "drift_gate_reject",
                                         e.t);
                          ss.quarantined++;
                      }
                  }
                  if (ss.quarantined > 0) {
                      st.halted = true;
                      ro_stats[ro].halted = true;
                  }
                  ro_stats[ro].stages.push_back(ss);
                  break;
              }
            }
        }
    }

    // ------------------------------------------------------------
    // Phase 2 — execution replay: one GpuSim per node, each with a
    // private MetricRegistry, so node replays parallelize with no
    // shared metric state; registries merge into the global one in
    // node id order afterwards (byte-identical at any thread
    // count). Kernel traces stay off: a 500-node replay would
    // otherwise retain every simulated launch record.
    // ------------------------------------------------------------
    std::vector<std::unique_ptr<obs::MetricRegistry>> node_regs;
    std::vector<std::unique_ptr<gpusim::GpuSim>> sims;
    {
        std::vector<int> streams_needed(
            static_cast<std::size_t>(n_nodes), 1);
        for (const FleetInstance &inst : instances)
            streams_needed[static_cast<std::size_t>(inst.node)] =
                std::max(
                    streams_needed[static_cast<std::size_t>(
                        inst.node)],
                    inst.stream + 1);
        for (int node = 0; node < n_nodes; node++) {
            node_regs.push_back(
                std::make_unique<obs::MetricRegistry>());
            sims.push_back(std::make_unique<gpusim::GpuSim>(
                fleet.specOf(node), node_regs.back().get()));
            for (int s = 1;
                 s < streams_needed[static_cast<std::size_t>(node)];
                 s++)
                sims.back()->createStream();
            sims.back()->setTraceMode(gpusim::TraceMode::kOff);
        }

        std::vector<std::map<
            std::pair<int, int>,
            std::unique_ptr<runtime::ExecutionContext>>>
            ctxs(instances.size());
        for (std::size_t i = 0; i < instances.size(); i++) {
            FleetInstance &inst = instances[i];
            auto &sim =
                *sims[static_cast<std::size_t>(inst.node)];
            int c = fleet.nodes[static_cast<std::size_t>(inst.node)]
                        .dev_class;
            for (auto &pd : inst.plan) {
                sim.delayUntil(inst.stream, pd.t_s);
                auto &ctx = ctxs[i][{pd.version, pd.engine_idx}];
                if (!ctx)
                    ctx = std::make_unique<
                        runtime::ExecutionContext>(
                        versions[static_cast<std::size_t>(
                                     inst.model)]
                                [static_cast<std::size_t>(
                                    pd.version)]
                                    .sets[static_cast<std::size_t>(
                                        c)]
                                    .engines
                                        [static_cast<std::size_t>(
                                            pd.engine_idx)],
                        sim, inst.stream);
                auto h = ctx->enqueueInference(true, true,
                                               /*staged=*/true);
                pd.begin = h.begin;
                pd.upload_done = h.upload_done;
                pd.compute_done = h.compute_done;
                pd.end = h.end;
            }
        }

        auto runNode = [&](std::size_t node) {
            sims[node]->run();
        };
        const int threads =
            std::min(std::max(1, cfg.sim_threads), n_nodes);
        if (threads <= 1) {
            EDGERT_SPAN("fleet_replay",
                        {{"nodes", std::to_string(n_nodes)},
                         {"threads", "1"}});
            for (int node = 0; node < n_nodes; node++)
                runNode(static_cast<std::size_t>(node));
        } else {
            EDGERT_SPAN("fleet_replay",
                        {{"nodes", std::to_string(n_nodes)},
                         {"threads", std::to_string(threads)}});
            ThreadPool tp(threads);
            tp.parallelFor(static_cast<std::size_t>(n_nodes),
                           runNode);
        }
    }

    // Fold measured completions back (node-major instance order,
    // then plan order — deterministic).
    for (const FleetInstance &inst : instances) {
        const auto &sim =
            *sims[static_cast<std::size_t>(inst.node)];
        for (const auto &pd : inst.plan) {
            double end = sim.eventSeconds(pd.end);
            for (std::int64_t id : pd.request_ids) {
                serve::Request &r =
                    requests[static_cast<std::size_t>(id)];
                r.outcome = serve::Outcome::kCompleted;
                r.done_s = end;
            }
        }
    }

    // Per-node registries fold into the global one under a
    // per-group prefix: nodes of a pool merge additively into one
    // "fleet.<group>.gpusim.*" rollup, in node id order.
    {
        obs::MetricRegistry &global =
            obs::MetricRegistry::global();
        for (int node = 0; node < n_nodes; node++) {
            const FleetNode &fn =
                fleet.nodes[static_cast<std::size_t>(node)];
            global.mergeFrom(
                *node_regs[static_cast<std::size_t>(node)],
                "fleet." +
                    fleet.groups[static_cast<std::size_t>(
                                     fn.group)]
                        .name +
                    ".");
        }
    }

    // ------------------------------------------------------------
    // Report assembly (request-id order).
    // ------------------------------------------------------------
    FleetReport report;
    report.seed = cfg.seed;
    report.duration_s = cfg.duration_s;
    report.route_policy = routePolicyName(cfg.route_policy);
    report.placement = placementPolicyName(cfg.placement);
    report.vnodes = cfg.vnodes;
    report.nodes = n_nodes;

    std::vector<std::vector<double>> model_lat(
        static_cast<std::size_t>(n_models));
    std::vector<std::vector<double>> group_lat(fleet.groups.size());
    std::vector<std::int64_t> within_slo(
        static_cast<std::size_t>(n_models), 0);
    std::vector<double> all_lat;
    for (const serve::Request &r : requests) {
        report.offered++;
        if (r.outcome == serve::Outcome::kShed) {
            report.shed++;
            continue;
        }
        if (r.outcome != serve::Outcome::kCompleted) {
            report.unaccounted++;
            continue;
        }
        report.completed++;
        double ms = r.latencyMs();
        all_lat.push_back(ms);
        model_lat[static_cast<std::size_t>(r.model)].push_back(ms);
        if (r.sloMet())
            within_slo[static_cast<std::size_t>(r.model)]++;
        int g = fleet.nodes[static_cast<std::size_t>(r.device)]
                    .group;
        group_lat[static_cast<std::size_t>(g)].push_back(ms);
    }
    report.aggregate_offered_qps =
        static_cast<double>(report.offered) / cfg.duration_s;
    if (!all_lat.empty()) {
        report.mean_ms = mean(all_lat);
        report.p50_ms = percentile(all_lat, 50.0);
        report.p95_ms = percentile(all_lat, 95.0);
        report.p99_ms = percentile(all_lat, 99.0);
        report.max_ms =
            *std::max_element(all_lat.begin(), all_lat.end());
    }

    for (int c = 0; c < n_classes; c++) {
        FleetClassStats cs;
        cs.label =
            fleet.classes[static_cast<std::size_t>(c)].label();
        for (const FleetNode &fn : fleet.nodes)
            if (fn.dev_class == c)
                cs.nodes++;
        for (int m = 0; m < n_models; m++)
            cs.svc1_ms.push_back(
                versions[static_cast<std::size_t>(m)][0]
                    .svc[static_cast<std::size_t>(c)]
                    .front() *
                1e3);
        report.classes.push_back(std::move(cs));
    }

    for (int m = 0; m < n_models; m++) {
        auto mi = static_cast<std::size_t>(m);
        const auto &mc = cfg.models[mi];
        FleetModelStats s;
        s.model = mc.model;
        s.slo_ms = mc.slo_ms;
        s.serving_nodes = serving_nodes[mi];
        s.placement_rank = placement_rank_labels[mi];
        for (const serve::Request &r : requests)
            if (r.model == m)
                s.offered++;
        s.shed = model_shed[mi];
        s.completed =
            static_cast<std::int64_t>(model_lat[mi].size());
        s.slo_violations = s.completed - within_slo[mi];
        s.batches = model_batches[mi];
        s.offered_qps =
            static_cast<double>(s.offered) / cfg.duration_s;
        s.goodput_qps = static_cast<double>(within_slo[mi]) /
                        cfg.duration_s;
        s.attainment_pct =
            s.offered > 0
                ? 100.0 * static_cast<double>(within_slo[mi]) /
                      static_cast<double>(s.offered)
                : 0.0;
        s.mean_batch =
            s.batches > 0
                ? static_cast<double>(model_dispatched[mi]) /
                      static_cast<double>(s.batches)
                : 0.0;
        if (!model_lat[mi].empty()) {
            s.mean_ms = mean(model_lat[mi]);
            s.p50_ms = percentile(model_lat[mi], 50.0);
            s.p95_ms = percentile(model_lat[mi], 95.0);
            s.p99_ms = percentile(model_lat[mi], 99.0);
            s.max_ms = *std::max_element(model_lat[mi].begin(),
                                         model_lat[mi].end());
        }
        report.models.push_back(std::move(s));
    }

    for (std::size_t g = 0; g < fleet.groups.size(); g++) {
        FleetGroupStats gs;
        gs.group = fleet.groups[g].name;
        for (const FleetNode &fn : fleet.nodes) {
            if (static_cast<std::size_t>(fn.group) != g)
                continue;
            if (gs.nodes == 0)
                gs.dev_class =
                    fleet.classes[static_cast<std::size_t>(
                                      fn.dev_class)]
                        .label();
            gs.nodes++;
            if (quarantined[static_cast<std::size_t>(fn.id)])
                gs.quarantined++;
            if (failed[static_cast<std::size_t>(fn.id)])
                gs.failed++;
        }
        gs.completed =
            static_cast<std::int64_t>(group_lat[g].size());
        if (!group_lat[g].empty()) {
            gs.mean_ms = mean(group_lat[g]);
            gs.p99_ms = percentile(group_lat[g], 99.0);
        }
        report.groups.push_back(std::move(gs));
    }

    report.events = std::move(events);
    report.rollouts = std::move(ro_stats);

    report.alerts.pages = rollup.pages();
    report.alerts.warns = rollup.warns();
    report.alerts.clears = rollup.clears();
    report.alerts.first_page_s = rollup.firstPageSeconds();
    for (const watch::GroupAlertCounts &gc : rollup.byGroup()) {
        FleetAlertStats::Group g;
        g.group = gc.group;
        g.pages = gc.pages;
        g.warns = gc.warns;
        g.clears = gc.clears;
        report.alerts.by_group.push_back(std::move(g));
    }

    // A handful of fleet-level gauges for the CLI's metric dumps.
    {
        obs::MetricRegistry &reg = obs::MetricRegistry::global();
        reg.gauge("fleet.nodes", {}).set(
            static_cast<double>(n_nodes));
        int nq = 0;
        for (int node = 0; node < n_nodes; node++)
            if (quarantined[static_cast<std::size_t>(node)])
                nq++;
        reg.gauge("fleet.nodes.quarantined", {})
            .set(static_cast<double>(nq));
        for (const FleetModelStats &s : report.models) {
            const obs::Labels ml = {{"model", s.model}};
            reg.gauge("fleet.model.completed", ml)
                .set(static_cast<double>(s.completed));
            reg.gauge("fleet.model.shed", ml)
                .set(static_cast<double>(s.shed));
            reg.gauge("fleet.model.p99_ms", ml).set(s.p99_ms);
        }
    }

    return report;
}

std::string
FleetReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"seed\": " << seed << ",\n";
    os << "  \"duration_s\": " << jsonNumber(duration_s) << ",\n";
    os << "  \"route_policy\": \"" << jsonEscape(route_policy)
       << "\",\n";
    os << "  \"placement\": \"" << jsonEscape(placement) << "\",\n";
    os << "  \"vnodes\": " << vnodes << ",\n";
    os << "  \"nodes\": " << nodes << ",\n";
    os << "  \"offered\": " << offered << ",\n";
    os << "  \"completed\": " << completed << ",\n";
    os << "  \"shed\": " << shed << ",\n";
    os << "  \"unaccounted\": " << unaccounted << ",\n";
    os << "  \"aggregate_offered_qps\": "
       << jsonNumber(aggregate_offered_qps) << ",\n";
    os << "  \"latency_ms\": {\n";
    os << "    \"mean\": " << jsonNumber(mean_ms) << ",\n";
    os << "    \"p50\": " << jsonNumber(p50_ms) << ",\n";
    os << "    \"p95\": " << jsonNumber(p95_ms) << ",\n";
    os << "    \"p99\": " << jsonNumber(p99_ms) << ",\n";
    os << "    \"max\": " << jsonNumber(max_ms) << "\n";
    os << "  },\n";
    os << "  \"classes\": [\n";
    for (std::size_t i = 0; i < classes.size(); i++) {
        const FleetClassStats &c = classes[i];
        os << "    {\"label\": \"" << jsonEscape(c.label)
           << "\", \"nodes\": " << c.nodes << ", \"svc1_ms\": [";
        for (std::size_t m = 0; m < c.svc1_ms.size(); m++)
            os << (m ? ", " : "") << jsonNumber(c.svc1_ms[m]);
        os << "]}" << (i + 1 < classes.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"models\": [\n";
    for (std::size_t i = 0; i < models.size(); i++) {
        const FleetModelStats &s = models[i];
        os << "    {\n";
        os << "      \"model\": \"" << jsonEscape(s.model)
           << "\",\n";
        os << "      \"slo_ms\": " << jsonNumber(s.slo_ms)
           << ",\n";
        os << "      \"serving_nodes\": " << s.serving_nodes
           << ",\n";
        os << "      \"placement_rank\": [";
        for (std::size_t r = 0; r < s.placement_rank.size(); r++)
            os << (r ? ", " : "") << "\""
               << jsonEscape(s.placement_rank[r]) << "\"";
        os << "],\n";
        os << "      \"offered\": " << s.offered << ",\n";
        os << "      \"offered_qps\": "
           << jsonNumber(s.offered_qps) << ",\n";
        os << "      \"shed\": " << s.shed << ",\n";
        os << "      \"completed\": " << s.completed << ",\n";
        os << "      \"slo_violations\": " << s.slo_violations
           << ",\n";
        os << "      \"attainment_pct\": "
           << jsonNumber(s.attainment_pct) << ",\n";
        os << "      \"batches\": " << s.batches << ",\n";
        os << "      \"mean_batch\": " << jsonNumber(s.mean_batch)
           << ",\n";
        os << "      \"goodput_qps\": "
           << jsonNumber(s.goodput_qps) << ",\n";
        os << "      \"latency_ms\": {\n";
        os << "        \"mean\": " << jsonNumber(s.mean_ms)
           << ",\n";
        os << "        \"p50\": " << jsonNumber(s.p50_ms) << ",\n";
        os << "        \"p95\": " << jsonNumber(s.p95_ms) << ",\n";
        os << "        \"p99\": " << jsonNumber(s.p99_ms) << ",\n";
        os << "        \"max\": " << jsonNumber(s.max_ms) << "\n";
        os << "      }\n";
        os << "    }" << (i + 1 < models.size() ? "," : "")
           << "\n";
    }
    os << "  ],\n";
    os << "  \"groups\": [\n";
    for (std::size_t i = 0; i < groups.size(); i++) {
        const FleetGroupStats &g = groups[i];
        os << "    {\"group\": \"" << jsonEscape(g.group)
           << "\", \"class\": \"" << jsonEscape(g.dev_class)
           << "\", \"nodes\": " << g.nodes
           << ", \"quarantined\": " << g.quarantined
           << ", \"failed\": " << g.failed
           << ", \"completed\": " << g.completed
           << ", \"mean_ms\": " << jsonNumber(g.mean_ms)
           << ", \"p99_ms\": " << jsonNumber(g.p99_ms) << "}"
           << (i + 1 < groups.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"events\": [\n";
    for (std::size_t i = 0; i < events.size(); i++) {
        const FleetEvent &e = events[i];
        os << "    {\"t_s\": " << jsonNumber(e.t_s)
           << ", \"node\": " << e.node << ", \"name\": \""
           << jsonEscape(e.node_name) << "\", \"kind\": \""
           << jsonEscape(e.kind) << "\", \"reason\": \""
           << jsonEscape(e.reason)
           << "\", \"rerouted\": " << e.rerouted
           << ", \"remap_pct\": " << jsonNumber(e.remap_pct)
           << "}" << (i + 1 < events.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"rollouts\": [\n";
    for (std::size_t i = 0; i < rollouts.size(); i++) {
        const RolloutStats &ro = rollouts[i];
        os << "    {\n";
        os << "      \"model\": \"" << jsonEscape(ro.model)
           << "\",\n";
        os << "      \"candidate_build_id\": "
           << ro.candidate_build_id << ",\n";
        os << "      \"halted\": "
           << (ro.halted ? "true" : "false") << ",\n";
        os << "      \"verdicts\": [\n";
        for (std::size_t v = 0; v < ro.verdicts.size(); v++) {
            const ClassVerdictStats &cs = ro.verdicts[v];
            os << "        {\"class\": \""
               << jsonEscape(cs.dev_class) << "\", \"accepted\": "
               << (cs.accepted ? "true" : "false")
               << ", \"reason\": \"" << jsonEscape(cs.reason)
               << "\", \"disagreement_pct\": "
               << jsonNumber(cs.disagreement_pct)
               << ", \"kernel_remap_pct\": "
               << jsonNumber(cs.kernel_remap_pct) << "}"
               << (v + 1 < ro.verdicts.size() ? "," : "") << "\n";
        }
        os << "      ],\n";
        os << "      \"stages\": [\n";
        for (std::size_t s = 0; s < ro.stages.size(); s++) {
            const RolloutStageStats &ss = ro.stages[s];
            os << "        {\"t_s\": " << jsonNumber(ss.t_s)
               << ", \"pct\": " << jsonNumber(ss.pct)
               << ", \"executed\": "
               << (ss.executed ? "true" : "false")
               << ", \"cohort\": " << ss.cohort
               << ", \"switched\": " << ss.switched
               << ", \"quarantined\": " << ss.quarantined << "}"
               << (s + 1 < ro.stages.size() ? "," : "") << "\n";
        }
        os << "      ]\n";
        os << "    }" << (i + 1 < rollouts.size() ? "," : "")
           << "\n";
    }
    os << "  ],\n";
    os << "  \"alerts\": {\n";
    os << "    \"pages\": " << alerts.pages << ",\n";
    os << "    \"warns\": " << alerts.warns << ",\n";
    os << "    \"clears\": " << alerts.clears << ",\n";
    os << "    \"first_page_s\": " << jsonNumber(alerts.first_page_s)
       << ",\n";
    os << "    \"by_group\": [\n";
    for (std::size_t i = 0; i < alerts.by_group.size(); i++) {
        const FleetAlertStats::Group &g = alerts.by_group[i];
        os << "      {\"group\": \"" << jsonEscape(g.group)
           << "\", \"pages\": " << g.pages
           << ", \"warns\": " << g.warns
           << ", \"clears\": " << g.clears << "}"
           << (i + 1 < alerts.by_group.size() ? "," : "") << "\n";
    }
    os << "    ]\n";
    os << "  }\n";
    os << "}\n";
    return os.str();
}

} // namespace edgert::fleet
