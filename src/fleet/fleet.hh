#ifndef EDGERT_FLEET_FLEET_HH
#define EDGERT_FLEET_FLEET_HH

/**
 * @file
 * EdgeFleet: cluster-scale serving across a simulated heterogeneous
 * device fleet.
 *
 * A fleet run is the EdgeServe two-phase design lifted one level up:
 * a single control-plane DES routes fleet-wide arrivals across
 * hundreds of nodes (consistent hashing or least-predicted-sojourn),
 * runs per-node admission, batching and burn-rate SLO tracking, and
 * executes membership events — node failures, rejoins, automatic
 * quarantine, staged rollouts — at node granularity. The output is
 * one dispatch plan per engine instance per node; phase 2 replays
 * each node's plan in its own GpuSim (its own MetricRegistry, so the
 * replay parallelizes without any cross-thread metric interleaving)
 * and the per-node registries are merged into the global one in node
 * id order. Measured completions, not predictions, feed every
 * reported latency.
 *
 * Scale economics: engines are built and calibrated once per
 * *device class* (distinct device × clock) and shared read-only by
 * every node of the class, so a ~500-node fleet costs a handful of
 * builds plus per-node queues, streams and plans.
 *
 * Everything is a pure function of (config, seed): same-seed runs —
 * serial or multi-threaded replay — produce byte-identical reports.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "deploy/drift_gate.hh"
#include "fleet/placement.hh"
#include "fleet/router.hh"
#include "fleet/spec.hh"
#include "serve/queue.hh"
#include "serve/workload.hh"
#include "watch/slo.hh"

namespace edgert::fleet {

/** One model served fleet-wide and its traffic contract. */
struct FleetModelConfig
{
    std::string model;      //!< nn::buildZooModel name
    double slo_ms = 50.0;   //!< end-to-end deadline
    serve::ArrivalConfig arrivals; //!< *aggregate* fleet-wide load
    serve::BatchPolicy batching;
    int instances_per_node = 1;

    /** Serving precision of this model's fleet-wide engine builds;
     *  also steers capability placement (INT8 models rank classes
     *  by their precision-effective peak). */
    nn::Precision precision = nn::Precision::kFp16;

    /** Calibration-batch identity for @int8 / @mixed builds. */
    std::uint64_t calibration_seed = 0;

    /**
     * Share of the fleet placed to serve this model, filled in
     * placement-rank order (see PlacementPolicy). 100 = everywhere.
     */
    double nodes_pct = 100.0;
};

/**
 * One scheduled node decommission (and optional rejoin). Failures
 * are graceful drains: at fail_s the node leaves every ring and its
 * queued requests re-route deterministically; dispatches already
 * planned drain to completion, so no in-flight request is dropped.
 */
struct FailureSpec
{
    int node = -1;
    double fail_s = 0.0;
    double rejoin_s = -1.0; //!< < 0 = never rejoins
};

/** One stage of a staged rollout. */
struct RolloutStage
{
    double t_s = 0.0;
    double pct = 100.0; //!< cohort share of eligible nodes
};

/**
 * A fleet-wide staged rollout of a candidate engine build: at each
 * stage a seeded cohort (1% -> 10% -> 100% canonically) splices its
 * dispatch over to the candidate. The DriftGate judges the
 * candidate once per device class before the first stage; nodes of
 * a rejected class are quarantined instead of switched, and a stage
 * that quarantines anyone halts the remaining stages — the canary
 * cohort absorbs the bad build so the rest of the fleet never sees
 * it.
 */
struct RolloutSpec
{
    std::string model; //!< must match a FleetModelConfig
    std::uint64_t candidate_build_id = 2;
    std::vector<RolloutStage> stages;
    deploy::DriftGateConfig gate;
};

/** Whole-fleet configuration. */
struct FleetConfig
{
    std::vector<NodeGroup> groups;
    std::vector<FleetModelConfig> models;
    double duration_s = 10.0;
    std::uint64_t seed = 1;

    RoutePolicy route_policy = RoutePolicy::kHash;
    int vnodes = 128;       //!< ring points per node
    int sojourn_choices = 4; //!< power-of-d candidates (sojourn)

    PlacementPolicy placement = PlacementPolicy::kCalibrated;
    bool admission_control = true;

    /** Share of each node's RAM available for execution contexts. */
    double ram_fraction = 0.5;

    std::uint64_t build_id = 1;

    /**
     * Worker threads for the phase-2 replay (1 = serial node order;
     * >1 runs node simulators on a thread pool). Reports are
     * byte-identical across thread counts: each node's simulator
     * owns a private MetricRegistry, merged in node id order.
     */
    int sim_threads = 1;

    /** Quarantine a node when its SLO tracker pages. */
    bool quarantine_on_page = true;
    watch::SloTracker::Config slo;

    std::vector<FailureSpec> failures;
    std::vector<RolloutSpec> rollouts;

    /** Probe keys per remap measurement (membership-change events
     *  report the share of key space that moved). */
    int remap_probes = 4096;
};

/** Per-model fleet-wide serving outcome. */
struct FleetModelStats
{
    std::string model;
    double slo_ms = 0.0;
    int serving_nodes = 0; //!< nodes placed with >= 1 instance
    std::vector<std::string> placement_rank; //!< class labels, best first

    std::int64_t offered = 0;
    std::int64_t shed = 0;
    std::int64_t completed = 0;
    std::int64_t slo_violations = 0;
    std::int64_t batches = 0;

    double offered_qps = 0.0;
    double goodput_qps = 0.0;     //!< within-SLO completions / s
    double attainment_pct = 0.0;  //!< within-SLO / offered x 100
    double mean_batch = 0.0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
};

/** Per-group (node pool) outcome. */
struct FleetGroupStats
{
    std::string group;
    std::string dev_class; //!< class label, e.g. "nx" / "agx@0.6"
    int nodes = 0;
    int quarantined = 0;
    int failed = 0; //!< failed and never rejoined
    std::int64_t completed = 0;
    double mean_ms = 0.0;
    double p99_ms = 0.0;
};

/** One membership event (failure / rejoin / quarantine). */
struct FleetEvent
{
    double t_s = 0.0;
    int node = -1;
    std::string node_name;
    std::string kind;   //!< "fail" | "rejoin" | "quarantine"
    std::string reason; //!< quarantine reason ("" otherwise)
    std::int64_t rerouted = 0; //!< queued requests moved
    double remap_pct = 0.0; //!< mean key-space share remapped
};

/** The drift verdict of one device class within a rollout. */
struct ClassVerdictStats
{
    std::string dev_class;
    bool accepted = false;
    std::string reason;
    double disagreement_pct = 0.0;
    double kernel_remap_pct = 0.0;
};

/** Outcome of one rollout stage. */
struct RolloutStageStats
{
    double t_s = 0.0;
    double pct = 0.0;
    bool executed = false; //!< false when a prior stage halted
    int cohort = 0;
    int switched = 0;
    int quarantined = 0;
};

/** Outcome of one staged rollout. */
struct RolloutStats
{
    std::string model;
    std::uint64_t candidate_build_id = 0;
    bool halted = false;
    std::vector<ClassVerdictStats> verdicts;
    std::vector<RolloutStageStats> stages;
};

/** Fleet-wide SLO alert rollup. */
struct FleetAlertStats
{
    std::int64_t pages = 0;
    std::int64_t warns = 0;
    std::int64_t clears = 0;
    double first_page_s = -1.0;

    struct Group
    {
        std::string group;
        std::int64_t pages = 0;
        std::int64_t warns = 0;
        std::int64_t clears = 0;
    };
    std::vector<Group> by_group;
};

/** Per-class summary (shared builds and calibration). */
struct FleetClassStats
{
    std::string label;
    int nodes = 0;
    /** Calibrated batch-1 service time per model (ms), model order. */
    std::vector<double> svc1_ms;
};

/** Full report of one fleet run. */
struct FleetReport
{
    std::uint64_t seed = 0;
    double duration_s = 0.0;
    std::string route_policy;
    std::string placement;
    int vnodes = 0;
    int nodes = 0;

    std::int64_t offered = 0;
    std::int64_t completed = 0;
    std::int64_t shed = 0;
    /** Requests in no terminal state at drain — always 0; reported
     *  so the zero-drop invariant is visible in the artifact. */
    std::int64_t unaccounted = 0;

    double aggregate_offered_qps = 0.0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;

    std::vector<FleetClassStats> classes;
    std::vector<FleetModelStats> models;
    std::vector<FleetGroupStats> groups;
    std::vector<FleetEvent> events;
    std::vector<RolloutStats> rollouts;
    FleetAlertStats alerts;

    /** Canonical JSON (deterministic field order and numbers). */
    std::string toJson() const;
};

/** Run the fleet; deterministic for a fixed config. */
FleetReport runFleet(const FleetConfig &cfg);

} // namespace edgert::fleet

#endif // EDGERT_FLEET_FLEET_HH
