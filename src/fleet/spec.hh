#ifndef EDGERT_FLEET_SPEC_HH
#define EDGERT_FLEET_SPEC_HH

/**
 * @file
 * FleetSpec — the shape of a simulated edge-device fleet.
 *
 * A fleet is declared as groups of identical nodes: a device kind
 * from Table I (Xavier NX / AGX Xavier), a count, and optionally a
 * throttled clock (DeviceSpec::withClock) for straggler pools — the
 * paper pins clocks per §III, but production fleets always carry a
 * thermally-limited tail. Resolution flattens the groups into an
 * id-ordered node list and deduplicates the distinct
 * (device, clock) combinations into *device classes*: engines are
 * built and calibrated once per class and shared read-only by every
 * node of that class, which is what makes a ~500-node fleet cheap
 * to simulate (per-node state is just streams, queues and plans).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device.hh"

namespace edgert::fleet {

/** One pool of identical nodes. */
struct NodeGroup
{
    std::string name;   //!< unique; defaults to "<device><index>"
    std::string device; //!< "nx" | "agx"
    int count = 0;
    double clock_ghz = 0.0; //!< 0 = the device's pinned default
};

/**
 * A distinct (device, clock) combination. Nodes of one class share
 * built engines and calibrated service predictions.
 */
struct DeviceClass
{
    std::string device;     //!< "nx" | "agx"
    double clock_ghz = 0.0; //!< 0 = default
    gpusim::DeviceSpec spec;

    /** Stable wire name, e.g. "nx" or "agx@0.6". */
    std::string label() const;
};

/** One resolved node. */
struct FleetNode
{
    int id = -1;        //!< fleet-wide index, group declaration order
    int group = -1;     //!< into the group list
    int dev_class = -1; //!< into the class list
    std::string name;   //!< "<group>/<ordinal>", e.g. "nx0/17"
};

/** Flattened fleet: nodes in id order plus their device classes. */
struct ResolvedFleet
{
    std::vector<NodeGroup> groups;
    std::vector<DeviceClass> classes;
    std::vector<FleetNode> nodes;

    const gpusim::DeviceSpec &specOf(int node) const;
};

/**
 * Flatten groups into nodes and device classes. Groups without a
 * name get "<device><group-index>"; duplicate group names, unknown
 * devices, non-positive counts and non-positive explicit clocks are
 * fatal().
 */
ResolvedFleet resolveFleet(std::vector<NodeGroup> groups);

/**
 * Parse one CLI group spec:
 *   <device>:<count>[:clock=<ghz>][:name=<str>]
 * e.g. "nx:96", "agx:24", "nx:8:clock=0.6:name=straggler".
 */
NodeGroup parseNodeGroup(const std::string &spec);

} // namespace edgert::fleet

#endif // EDGERT_FLEET_SPEC_HH
