#ifndef EDGERT_FLEET_ROUTER_HH
#define EDGERT_FLEET_ROUTER_HH

/**
 * @file
 * Request routing across fleet nodes.
 *
 * Two pluggable policies:
 *
 *  - hash: seeded consistent hashing over a ring of virtual nodes.
 *    Every node owns `vnodes` points; a request lands on the first
 *    point clockwise of its key. Removing a node remaps only the
 *    keys that node owned (its points' arcs fall to their ring
 *    successors), so failures and rejoins move a ~1/n slice of
 *    traffic instead of reshuffling the fleet.
 *
 *  - sojourn: least-predicted-sojourn over a deterministic
 *    candidate set. The ring's first `choices` distinct successors
 *    of the key are scored with serve::predictSojournSeconds (the
 *    node's calibrated LatencyPredictor view) and the minimum wins,
 *    ties broken by lowest node id — the classic power-of-d-choices
 *    balancer, made reproducible by drawing candidates from the
 *    same seeded ring the hash policy uses.
 *
 * Everything is a pure function of (seed, membership, key): no
 * global state, no wall clock, byte-stable across platforms.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace edgert::fleet {

/** Routing policy selector. */
enum class RoutePolicy { kHash, kLeastSojourn };

/** Parse "hash" | "sojourn" (fatal on anything else). */
RoutePolicy parseRoutePolicy(const std::string &s);

/** Stable wire name ("hash" / "sojourn"). */
const char *routePolicyName(RoutePolicy policy);

/**
 * Seeded consistent-hash ring with virtual nodes. Membership
 * changes are O(vnodes log n); routing is a binary search.
 */
class HashRing
{
  public:
    /**
     * @param seed   Placement seed; equal seeds give equal rings.
     * @param vnodes Virtual nodes per member (>= 1). More points
     *        flatten the load spread (stddev ~ 1/sqrt(vnodes)).
     */
    HashRing(std::uint64_t seed, int vnodes);

    /** Replace the whole membership (bulk build: one sort instead
     *  of per-point insertion). Duplicates are dropped. */
    void reset(const std::vector<int> &nodes);

    /** Add a member; adding a present member is a no-op. */
    void add(int node);

    /** Remove a member; removing an absent member is a no-op. */
    void remove(int node);

    bool contains(int node) const;
    std::size_t memberCount() const { return members_.size(); }
    bool empty() const { return ring_.empty(); }

    /** Owner of a key, or -1 when the ring is empty. */
    int route(std::uint64_t key) const;

    /**
     * Up to `n` distinct members in ring order starting at the
     * key's owner (the hash policy's failover / candidate order).
     */
    std::vector<int> successors(std::uint64_t key, int n) const;

    /** Hash a request id into ring-key space. */
    std::uint64_t keyFor(std::int64_t request_id) const;

  private:
    std::uint64_t pointHash(int node, int vnode) const;

    std::uint64_t seed_;
    int vnodes_;
    std::vector<int> members_; //!< sorted member ids
    /** Sorted (hash, node); the node breaks hash ties totally. */
    std::vector<std::pair<std::uint64_t, int>> ring_;
};

/**
 * Fraction (in percent) of `probes` deterministic probe keys whose
 * owner differs between two rings — the report's "how much traffic
 * did this membership change move" figure and the minimal-remap
 * test's measurement.
 */
double remapPct(const HashRing &a, const HashRing &b, int probes);

} // namespace edgert::fleet

#endif // EDGERT_FLEET_ROUTER_HH
