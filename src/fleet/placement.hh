#ifndef EDGERT_FLEET_PLACEMENT_HH
#define EDGERT_FLEET_PLACEMENT_HH

/**
 * @file
 * Heterogeneity-aware engine placement.
 *
 * When a model is replicated onto only part of the fleet, *which*
 * part matters. The obvious policy — fill the nominally biggest
 * devices first (peak FP16 FLOPs, i.e. AGX before NX before any
 * throttled pool) — walks straight into the paper's Findings 4/5:
 * some engines genuinely run faster on the Xavier NX than on the
 * AGX (per-transfer H2D overhead and 8-SM cache thrash outweigh the
 * extra SMs). The calibrated policy instead ranks device classes by
 * each model's *measured* batch-1 service time from the per-class
 * serve::LatencyPredictor calibration — placing the engine where it
 * is actually fastest, not where the spec sheet says it should be.
 */

#include <string>
#include <vector>

#include "fleet/spec.hh"
#include "nn/executor.hh"

namespace edgert::fleet {

/** Placement policy selector. */
enum class PlacementPolicy { kCapabilityOrder, kCalibrated };

/** Parse "capability" | "calibrated" (fatal on anything else). */
PlacementPolicy parsePlacementPolicy(const std::string &s);

/** Stable wire name ("capability" / "calibrated"). */
const char *placementPolicyName(PlacementPolicy policy);

/**
 * Device-class preference order for one model.
 *
 * @param svc1_s Calibrated batch-1 service seconds per class,
 *        parallel to `classes` (used by kCalibrated; may be empty
 *        for kCapabilityOrder).
 * @param precision Serving precision of the model being placed.
 *        Capability order weights each class's nominal peak by the
 *        precision's throughput factor — an INT8 fleet can rank
 *        differently from an FP16 one when classes differ in
 *        int8_speedup (scoring raw peakFp16Flops regardless of
 *        precision was the old blind spot).
 * @return Class indices, most preferred first. Capability order
 *         sorts by descending precision-effective peak, calibrated
 *         by ascending predicted service time; both break ties by
 *         class index.
 */
std::vector<int> rankClasses(
    PlacementPolicy policy,
    const std::vector<DeviceClass> &classes,
    const std::vector<double> &svc1_s,
    nn::Precision precision = nn::Precision::kFp16);

/**
 * Pick the nodes that serve one model: walk classes in `rank`
 * order, taking that class's nodes in id order, until
 * ceil(nodes_pct% of the fleet) nodes are selected (at least one).
 *
 * @return Per-node serve flag, index = node id.
 */
std::vector<bool> selectNodes(const ResolvedFleet &fleet,
                              const std::vector<int> &rank,
                              double nodes_pct);

} // namespace edgert::fleet

#endif // EDGERT_FLEET_PLACEMENT_HH
