#include "fleet/router.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace edgert::fleet {

RoutePolicy
parseRoutePolicy(const std::string &s)
{
    if (s == "hash")
        return RoutePolicy::kHash;
    if (s == "sojourn")
        return RoutePolicy::kLeastSojourn;
    fatal("unknown route policy '", s, "' (expected hash|sojourn)");
}

const char *
routePolicyName(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::kHash: return "hash";
      case RoutePolicy::kLeastSojourn: return "sojourn";
    }
    return "?";
}

HashRing::HashRing(std::uint64_t seed, int vnodes)
    : seed_(seed), vnodes_(vnodes)
{
    if (vnodes_ < 1)
        fatal("HashRing needs at least one virtual node (got ",
              vnodes_, ")");
}

std::uint64_t
HashRing::pointHash(int node, int vnode) const
{
    // Pack (node, vnode) into one word before mixing: feeding the
    // two small ints through hashCombine first aliases badly
    // (vnode + (node << 6) collides across members), leaving half
    // the ring points duplicated and the lowest node id owning
    // every shadowed arc.  The packed form is injective, so every
    // ring point is distinct by construction.
    return hashCombine(
        seed_, (static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(node))
                << 32) |
                   static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(vnode)));
}

void
HashRing::reset(const std::vector<int> &nodes)
{
    members_.clear();
    ring_.clear();
    for (int node : nodes)
        members_.push_back(node);
    std::sort(members_.begin(), members_.end());
    members_.erase(std::unique(members_.begin(), members_.end()),
                   members_.end());
    ring_.reserve(members_.size() *
                  static_cast<std::size_t>(vnodes_));
    for (int node : members_)
        for (int v = 0; v < vnodes_; v++)
            ring_.emplace_back(pointHash(node, v), node);
    std::sort(ring_.begin(), ring_.end());
}

void
HashRing::add(int node)
{
    auto it = std::lower_bound(members_.begin(), members_.end(),
                               node);
    if (it != members_.end() && *it == node)
        return;
    members_.insert(it, node);
    for (int v = 0; v < vnodes_; v++) {
        std::pair<std::uint64_t, int> p{pointHash(node, v), node};
        ring_.insert(
            std::lower_bound(ring_.begin(), ring_.end(), p), p);
    }
}

void
HashRing::remove(int node)
{
    auto it = std::lower_bound(members_.begin(), members_.end(),
                               node);
    if (it == members_.end() || *it != node)
        return;
    members_.erase(it);
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [node](const auto &p) {
                                   return p.second == node;
                               }),
                ring_.end());
}

bool
HashRing::contains(int node) const
{
    return std::binary_search(members_.begin(), members_.end(),
                              node);
}

int
HashRing::route(std::uint64_t key) const
{
    if (ring_.empty())
        return -1;
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), key,
        [](const auto &p, std::uint64_t k) { return p.first < k; });
    if (it == ring_.end())
        it = ring_.begin(); // wrap
    return it->second;
}

std::vector<int>
HashRing::successors(std::uint64_t key, int n) const
{
    std::vector<int> out;
    if (ring_.empty() || n <= 0)
        return out;
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), key,
        [](const auto &p, std::uint64_t k) { return p.first < k; });
    for (std::size_t walked = 0;
         walked < ring_.size() &&
         out.size() < static_cast<std::size_t>(n);
         walked++) {
        if (it == ring_.end())
            it = ring_.begin();
        if (std::find(out.begin(), out.end(), it->second) ==
            out.end())
            out.push_back(it->second);
        ++it;
    }
    return out;
}

std::uint64_t
HashRing::keyFor(std::int64_t request_id) const
{
    return mix64(hashCombine(
        seed_, static_cast<std::uint64_t>(request_id)));
}

double
remapPct(const HashRing &a, const HashRing &b, int probes)
{
    if (probes <= 0)
        return 0.0;
    int moved = 0;
    for (int i = 0; i < probes; i++) {
        std::uint64_t key =
            mix64(hashCombine(0x9e3779b97f4a7c15ull,
                              static_cast<std::uint64_t>(i)));
        if (a.route(key) != b.route(key))
            moved++;
    }
    return 100.0 * static_cast<double>(moved) /
           static_cast<double>(probes);
}

} // namespace edgert::fleet
