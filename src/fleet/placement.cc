#include "fleet/placement.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/precision.hh"

namespace edgert::fleet {

PlacementPolicy
parsePlacementPolicy(const std::string &s)
{
    if (s == "capability")
        return PlacementPolicy::kCapabilityOrder;
    if (s == "calibrated")
        return PlacementPolicy::kCalibrated;
    fatal("unknown placement policy '", s,
          "' (expected capability|calibrated)");
}

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::kCapabilityOrder: return "capability";
      case PlacementPolicy::kCalibrated: return "calibrated";
    }
    return "?";
}

std::vector<int>
rankClasses(PlacementPolicy policy,
            const std::vector<DeviceClass> &classes,
            const std::vector<double> &svc1_s,
            nn::Precision precision)
{
    if (policy == PlacementPolicy::kCalibrated &&
        svc1_s.size() != classes.size())
        fatal("rankClasses: calibrated placement needs one service "
              "time per class (got ",
              svc1_s.size(), " for ", classes.size(), " classes)");
    std::vector<int> rank(classes.size());
    for (std::size_t i = 0; i < rank.size(); i++)
        rank[i] = static_cast<int>(i);
    std::stable_sort(
        rank.begin(), rank.end(), [&](int a, int b) {
            if (policy == PlacementPolicy::kCapabilityOrder) {
                // Spec-sheet order: nominal peak at the platform's
                // max clock, blind to throttled stragglers — the
                // naive policy the F4/F5 findings warn against.
                // The peak is weighted by the serving precision's
                // throughput factor: an INT8 model prefers the
                // class with the better IMMA rate, not the bigger
                // FP16 number.
                const gpusim::DeviceSpec sa_spec =
                    classes[static_cast<std::size_t>(a)]
                        .spec.atMaxClock();
                const gpusim::DeviceSpec sb_spec =
                    classes[static_cast<std::size_t>(b)]
                        .spec.atMaxClock();
                double fa =
                    sa_spec.peakFp16Flops() *
                    core::precisionThroughputFactor(sa_spec,
                                                    precision);
                double fb =
                    sb_spec.peakFp16Flops() *
                    core::precisionThroughputFactor(sb_spec,
                                                    precision);
                if (fa != fb)
                    return fa > fb;
            } else {
                double sa = svc1_s[static_cast<std::size_t>(a)];
                double sb = svc1_s[static_cast<std::size_t>(b)];
                if (sa != sb)
                    return sa < sb;
            }
            return a < b;
        });
    return rank;
}

std::vector<bool>
selectNodes(const ResolvedFleet &fleet, const std::vector<int> &rank,
            double nodes_pct)
{
    if (nodes_pct <= 0.0 || nodes_pct > 100.0)
        fatal("selectNodes: nodes_pct must be in (0, 100] (got ",
              nodes_pct, ")");
    auto want = static_cast<std::size_t>(std::max(
        1.0,
        std::ceil(nodes_pct / 100.0 *
                  static_cast<double>(fleet.nodes.size()))));
    want = std::min(want, fleet.nodes.size());
    std::vector<bool> serves(fleet.nodes.size(), false);
    std::size_t taken = 0;
    for (int c : rank) {
        for (const FleetNode &n : fleet.nodes) {
            if (taken >= want)
                break;
            if (n.dev_class != c)
                continue;
            serves[static_cast<std::size_t>(n.id)] = true;
            taken++;
        }
        if (taken >= want)
            break;
    }
    return serves;
}

} // namespace edgert::fleet
