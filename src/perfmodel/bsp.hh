#ifndef EDGERT_PERFMODEL_BSP_HH
#define EDGERT_PERFMODEL_BSP_HH

/**
 * @file
 * BSP-inspired GPU performance predictor (paper §VI-B).
 *
 * Implements the model of Eq. 2: a kernel's execution time is the
 * sum of its computation cost and its shared/global-memory
 * communication costs, divided by (clock x cores x lambda), where
 * lambda is a per-kernel calibration constant obtained on one
 * platform and reused to predict another platform of the same
 * microarchitecture.
 *
 * The paper's point — which this module reproduces — is that the
 * approach breaks down under TensorRT's non-deterministic engine
 * generation: rebuilt engines change the kernel mix, invocation
 * counts and per-invocation times, so lambdas calibrated on one
 * engine mispredict another engine of the *same model* by a
 * varying margin (their Tables XVII/XVIII show 2-13% swings).
 */

#include <map>
#include <string>
#include <vector>

#include "gpusim/device.hh"
#include "gpusim/sim.hh"

namespace edgert::perfmodel {

/** Microarchitectural latency constants (cycles). */
struct MicroArchParams
{
    double instr_cycles = 4.0;
    double lds_cycles = 19.0;  //!< shared-memory access
    double l1_cycles = 28.0;
    double l2_cycles = 193.0;
    double gm_cycles = 400.0;  //!< DRAM access

    /**
     * "Run the microbenchmarks" on a device. Both Xavier variants
     * are GV10B, so the measured constants match — the paper's
     * premise for cross-platform prediction.
     */
    static MicroArchParams measure(const gpusim::DeviceSpec &device);
};

/**
 * Raw (lambda = 1) BSP time of one kernel launch on a device, in
 * milliseconds. Counters are aggregate over all threads.
 */
double bspRawMs(const gpusim::KernelDesc &kernel,
                const gpusim::DeviceSpec &device,
                const MicroArchParams &params);

/** Per-kernel-name calibration outcome. */
struct LambdaEntry
{
    double lambda = 1.0;
    int samples = 0;
};

/** Whole-application prediction outcome. */
struct Prediction
{
    double predicted_ms = 0.0;
    double measured_ms = 0.0;
    double error_pct = 0.0; //!< |pred - meas| / meas * 100
    int kernels_total = 0;
    int kernels_without_lambda = 0; //!< fell back to lambda = 1
};

/**
 * The calibrate-then-predict workflow of [56] as adopted by the
 * paper.
 */
class BspModel
{
  public:
    explicit BspModel(const gpusim::DeviceSpec &calib_device);

    /**
     * Calibrate per-kernel lambdas from a profiled trace measured
     * on the calibration device.
     */
    void calibrate(const std::vector<gpusim::OpRecord> &trace);

    /**
     * Predict the kernel-time total of a target trace on a target
     * device using the stored lambdas, and compare against the
     * trace's own (measured) durations.
     */
    Prediction predict(const std::vector<gpusim::OpRecord> &trace,
                       const gpusim::DeviceSpec &target) const;

    const std::map<std::string, LambdaEntry> &lambdas() const
    {
        return lambdas_;
    }

  private:
    gpusim::DeviceSpec calib_device_;
    MicroArchParams params_;
    std::map<std::string, LambdaEntry> lambdas_;
};

} // namespace edgert::perfmodel

#endif // EDGERT_PERFMODEL_BSP_HH
