#include "perfmodel/bsp.hh"

#include <cmath>

#include "common/logging.hh"

namespace edgert::perfmodel {

MicroArchParams
MicroArchParams::measure(const gpusim::DeviceSpec &device)
{
    // Pointer-chase / ILP microbenchmarks would run here on real
    // hardware; GV10B constants are identical on NX and AGX.
    (void)device;
    return MicroArchParams{};
}

double
bspRawMs(const gpusim::KernelDesc &k, const gpusim::DeviceSpec &dev,
         const MicroArchParams &p)
{
    double comp = static_cast<double>(k.instructions) * p.instr_cycles;
    double comm_sm =
        static_cast<double>(k.lds + k.sts) * p.lds_cycles;
    double gm_accesses = static_cast<double>(k.ldg + k.stg) -
                         static_cast<double>(k.l1_hits + k.l2_hits);
    if (gm_accesses < 0.0)
        gm_accesses = 0.0;
    double comm_gm = gm_accesses * p.gm_cycles +
                     static_cast<double>(k.l1_hits) * p.l1_cycles +
                     static_cast<double>(k.l2_hits) * p.l2_cycles;

    double clock_hz = dev.gpu_clock_ghz * 1e9;
    double cores = static_cast<double>(dev.sm_count) *
                   static_cast<double>(dev.cuda_cores_per_sm);
    double cycles = comp + comm_sm + comm_gm;
    return cycles / (clock_hz * cores) * 1e3;
}

BspModel::BspModel(const gpusim::DeviceSpec &calib_device)
    : calib_device_(calib_device),
      params_(MicroArchParams::measure(calib_device))
{}

void
BspModel::calibrate(const std::vector<gpusim::OpRecord> &trace)
{
    std::map<std::string, std::pair<double, double>> sums; // raw, meas
    std::map<std::string, int> counts;
    for (const auto &rec : trace) {
        if (rec.kind != gpusim::OpKind::kKernel)
            continue;
        double raw = bspRawMs(rec.kernel, calib_device_, params_);
        auto &s = sums[rec.name];
        s.first += raw;
        s.second += rec.durationSeconds() * 1e3;
        counts[rec.name]++;
    }
    for (const auto &[name, s] : sums) {
        if (s.second <= 0.0)
            continue;
        LambdaEntry e;
        // lambda absorbs everything the analytic expression misses
        // (divergence, conflicts, coalescing): lambda = raw / meas.
        e.lambda = s.first / s.second;
        e.samples = counts[name];
        lambdas_[name] = e;
    }
}

Prediction
BspModel::predict(const std::vector<gpusim::OpRecord> &trace,
                  const gpusim::DeviceSpec &target) const
{
    Prediction out;
    for (const auto &rec : trace) {
        if (rec.kind != gpusim::OpKind::kKernel)
            continue;
        out.kernels_total++;
        double raw = bspRawMs(rec.kernel, target, params_);
        double lambda = 1.0;
        auto it = lambdas_.find(rec.name);
        if (it == lambdas_.end())
            out.kernels_without_lambda++;
        else
            lambda = it->second.lambda;
        out.predicted_ms += raw / std::max(lambda, 1e-9);
        out.measured_ms += rec.durationSeconds() * 1e3;
    }
    if (out.measured_ms > 0.0)
        out.error_pct = 100.0 *
                        std::fabs(out.predicted_ms - out.measured_ms) /
                        out.measured_ms;
    return out;
}

} // namespace edgert::perfmodel
