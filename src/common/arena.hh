#ifndef EDGERT_COMMON_ARENA_HH
#define EDGERT_COMMON_ARENA_HH

/**
 * @file
 * Allocation primitives for simulation hot paths.
 *
 * The discrete-event core used to pay a handful of heap allocations
 * per simulated event (deque nodes, per-step scratch vectors,
 * records); at fleet scale that is the dominant cost. This header
 * provides three small, header-only building blocks that gpusim and
 * serve share:
 *
 *  - Arena:      a chunked bump allocator. reset() rewinds to empty
 *                while *retaining* the chunks, so a steady-state
 *                consumer stops allocating entirely. Addresses are
 *                stable (chunks never move or grow in place).
 *  - IndexPool:  a typed slot pool with a free list, addressed by
 *                dense int32 indices. Slots are constructed once in
 *                Arena chunks and recycled thereafter, so members
 *                with capacity (std::string, vectors) keep their
 *                buffers across acquire/release cycles.
 *  - RingBuffer: a power-of-two ring FIFO that grows by copy but
 *                never shrinks — a deque without per-node churn.
 *
 * None of these are thread-safe; each simulator owns its own.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace edgert {

/**
 * Chunked bump allocator with stable addresses. allocate() carves
 * from the current chunk and starts a new one when full; reset()
 * rewinds every chunk for reuse without returning memory to the
 * heap. Objects with non-trivial destructors must be destroyed by
 * the caller before reset() — the arena only manages bytes.
 */
class Arena
{
  public:
    explicit Arena(std::size_t chunk_bytes = 64 * 1024)
        : chunk_bytes_(chunk_bytes < 256 ? 256 : chunk_bytes)
    {}

    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        if (bytes == 0)
            bytes = 1;
        if (align == 0)
            align = 1;
        for (;;) {
            if (chunk_ < chunks_.size()) {
                Chunk &c = chunks_[chunk_];
                std::size_t at = (c.used + align - 1) &
                                 ~(align - 1);
                if (at + bytes <= c.size) {
                    c.used = at + bytes;
                    allocated_ += bytes;
                    return c.data.get() + at;
                }
                chunk_++;
                continue;
            }
            std::size_t size =
                bytes + align > chunk_bytes_ ? bytes + align
                                             : chunk_bytes_;
            Chunk c;
            c.data = std::make_unique<std::byte[]>(size);
            c.size = size;
            c.used = 0;
            reserved_ += size;
            chunks_.push_back(std::move(c));
        }
    }

    /** Rewind to empty; chunks are retained for reuse. */
    void
    reset()
    {
        for (Chunk &c : chunks_)
            c.used = 0;
        chunk_ = 0;
        allocated_ = 0;
    }

    /** Bytes held from the system heap (high-water footprint). */
    std::size_t bytesReserved() const { return reserved_; }

    /** Bytes handed out since construction or the last reset(). */
    std::size_t bytesAllocated() const { return allocated_; }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    std::vector<Chunk> chunks_;
    std::size_t chunk_ = 0; //!< current chunk index
    std::size_t chunk_bytes_;
    std::size_t reserved_ = 0;
    std::size_t allocated_ = 0;
};

/**
 * Typed slot pool over an Arena, addressed by int32 index. acquire()
 * pops the free list (LIFO) or constructs a fresh slot; release()
 * returns the slot without destroying it, so string/vector members
 * keep their capacity for the next tenant. Slot addresses are stable
 * for the pool's lifetime, but callers should hold indices — they
 * stay valid across any number of acquire() calls.
 */
template <typename T>
class IndexPool
{
  public:
    IndexPool() : arena_(64 * 1024) {}

    ~IndexPool()
    {
        for (T *s : slots_)
            s->~T();
    }

    IndexPool(const IndexPool &) = delete;
    IndexPool &operator=(const IndexPool &) = delete;

    /** Get a slot index; the slot holds whatever the previous
     *  tenant left (callers overwrite the fields they use). */
    std::int32_t
    acquire()
    {
        live_++;
        if (!free_.empty()) {
            std::int32_t idx = free_.back();
            free_.pop_back();
            return idx;
        }
        void *mem = arena_.allocate(sizeof(T), alignof(T));
        slots_.push_back(new (mem) T());
        return static_cast<std::int32_t>(slots_.size()) - 1;
    }

    /** Return a slot to the free list (contents retained). */
    void
    release(std::int32_t idx)
    {
        live_--;
        free_.push_back(idx);
    }

    T &operator[](std::int32_t idx)
    {
        return *slots_[static_cast<std::size_t>(idx)];
    }
    const T &operator[](std::int32_t idx) const
    {
        return *slots_[static_cast<std::size_t>(idx)];
    }

    /** Slots currently acquired. */
    std::size_t live() const { return live_; }

    /** Slots ever constructed (pool high-water mark). */
    std::size_t capacity() const { return slots_.size(); }

    /** Heap footprint: arena chunks plus index bookkeeping. */
    std::size_t
    bytesReserved() const
    {
        return arena_.bytesReserved() +
               slots_.capacity() * sizeof(T *) +
               free_.capacity() * sizeof(std::int32_t);
    }

  private:
    Arena arena_;
    std::vector<T *> slots_;
    std::vector<std::int32_t> free_;
    std::size_t live_ = 0;
};

/**
 * Growable power-of-two ring FIFO. push/pop are O(1) with no
 * steady-state allocation; growth copies the live range once and
 * the capacity is kept forever.
 */
template <typename T>
class RingBuffer
{
  public:
    bool empty() const { return head_ == tail_; }

    std::size_t size() const { return head_ - tail_; }

    void
    push(T v)
    {
        if (head_ - tail_ == buf_.size())
            grow();
        buf_[head_ & (buf_.size() - 1)] = std::move(v);
        head_++;
    }

    T &front() { return buf_[tail_ & (buf_.size() - 1)]; }
    const T &
    front() const
    {
        return buf_[tail_ & (buf_.size() - 1)];
    }

    void pop() { tail_++; }

    std::size_t
    bytesReserved() const
    {
        return buf_.capacity() * sizeof(T);
    }

  private:
    void
    grow()
    {
        std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
        std::vector<T> next(cap);
        std::size_t n = head_ - tail_;
        for (std::size_t i = 0; i < n; i++)
            next[i] = std::move(buf_[(tail_ + i) &
                                     (buf_.size() - 1)]);
        buf_ = std::move(next);
        tail_ = 0;
        head_ = n;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0; //!< next write position (monotonic)
    std::size_t tail_ = 0; //!< next read position (monotonic)
};

} // namespace edgert

#endif // EDGERT_COMMON_ARENA_HH
