#include "common/cliflags.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace edgert {

bool
FlagParser::next()
{
    if (i_ + 1 >= argc_)
        return false;
    i_++;
    arg_ = argv_[i_];
    inline_value_.reset();
    if (arg_.rfind("--", 0) == 0) {
        std::size_t eq = arg_.find('=');
        if (eq != std::string::npos) {
            inline_value_ = arg_.substr(eq + 1);
            arg_ = arg_.substr(0, eq);
        }
    }
    return true;
}

bool
FlagParser::isOption() const
{
    return arg_.rfind("--", 0) == 0;
}

std::string
FlagParser::value()
{
    if (inline_value_) {
        // One value per flag: consume it so a stray second call is
        // a missing-value diagnostic, not a silent repeat.
        std::string v = *inline_value_;
        inline_value_.reset();
        return v;
    }
    if (i_ + 1 >= argc_)
        fatal("missing value for ", arg_);
    return argv_[++i_];
}

double
FlagParser::numberValue()
{
    std::string v = value();
    auto r = parseDouble(v);
    if (!r.ok())
        fatal("invalid value '", v, "' for ", arg_, ": ",
              r.status().message());
    return *r;
}

std::int64_t
FlagParser::intValue()
{
    std::string v = value();
    auto r = parseInt64(v);
    if (!r.ok())
        fatal("invalid value '", v, "' for ", arg_, ": ",
              r.status().message());
    return *r;
}

std::uint64_t
FlagParser::unsignedValue()
{
    std::string v = value();
    auto r = parseUint64(v);
    if (!r.ok())
        fatal("invalid value '", v, "' for ", arg_, ": ",
              r.status().message());
    return *r;
}

} // namespace edgert
