#include "common/table.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace edgert {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("TextTable row arity ", cells.size(), " != header arity ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
TextTable::render(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); c++) {
            os << " " << row[c]
               << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    emit_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); c++)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
TextTable::toString() const
{
    std::ostringstream oss;
    render(oss);
    return oss.str();
}

} // namespace edgert
