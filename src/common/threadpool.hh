#ifndef EDGERT_COMMON_THREADPOOL_HH
#define EDGERT_COMMON_THREADPOOL_HH

/**
 * @file
 * A small fixed-size worker pool for CPU-bound fan-out, used by the
 * engine builder to time tactic candidates in parallel (TensorRT's
 * multi-threaded builder analogue).
 *
 * The pool intentionally has no futures or per-task return values:
 * callers submit void tasks and synchronize with wait(), or use
 * parallelFor() which dispatches indices dynamically and blocks
 * until every index has run. Work items communicate results by
 * writing to disjoint slots the caller owns, which is also what
 * keeps parallel users deterministic — output never depends on the
 * order in which workers pick up indices.
 */

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace edgert {

/**
 * Utilization snapshot of a ThreadPool. The pool lives in the
 * dependency-free common layer, so rather than publishing metrics
 * itself it exposes this struct; instrumented users (the builder)
 * copy it into their MetricRegistry.
 */
struct PoolStats
{
    std::uint64_t tasks_run = 0;      //!< tasks completed so far
    std::size_t max_queue_depth = 0;  //!< high-water queued tasks
    std::uint64_t wait_ns = 0;        //!< total time workers sat
                                      //!< idle before grabbing work
    std::vector<std::uint64_t> per_worker_tasks; //!< by worker index
    std::vector<std::uint64_t> per_worker_wait_ns;

    /**
     * Fraction of work done off the busiest worker's share, in
     * percent: 100 * tasks_run / (workers * max(per_worker_tasks)).
     * 100 means perfectly even; low values mean one worker did
     * nearly everything.
     */
    double utilizationPct() const;
};

/**
 * Fixed-size thread pool. Threads start in the constructor and join
 * in the destructor; the pool is reusable across submit/wait rounds.
 */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 means defaultThreads().
     */
    explicit ThreadPool(int threads = 0);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return static_cast<int>(workers_.size()); }

    /** Worker count matching the host: hardware_concurrency, min 1. */
    static int defaultThreads();

    /** Enqueue one task. Never blocks. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished. If any task
     * threw, the first exception (in completion order) is rethrown
     * here and the rest are dropped.
     */
    void wait();

    /**
     * Run body(i) for every i in [0, n), spread across the workers
     * with dynamic index dispatch, and block until all are done.
     * Exceptions propagate as in wait().
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /** Cumulative utilization counters since construction. */
    PoolStats stats() const;

  private:
    void workerLoop(std::size_t worker);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mu_;
    std::condition_variable work_cv_; //!< queue became non-empty
    std::condition_variable idle_cv_; //!< a task finished
    std::size_t in_flight_ = 0;       //!< queued + running tasks
    std::size_t max_queue_depth_ = 0;
    std::uint64_t tasks_run_ = 0;
    std::uint64_t wait_ns_ = 0;
    std::vector<std::uint64_t> per_worker_tasks_;
    std::vector<std::uint64_t> per_worker_wait_ns_;
    std::exception_ptr first_error_;
    bool stop_ = false;
};

} // namespace edgert

#endif // EDGERT_COMMON_THREADPOOL_HH
