#ifndef EDGERT_COMMON_FRAMING_HH
#define EDGERT_COMMON_FRAMING_HH

/**
 * @file
 * Integrity-framed container for binary file formats.
 *
 * A framed stream is
 *
 *     [magic u32][version u32][payload_len u64][payload][crc32 u32]
 *
 * where the CRC-32 covers the payload bytes only. The explicit
 * length header detects truncation and extension without parsing
 * the payload; the CRC detects any in-place corruption. Formats
 * that predate framing (version < framed_since) are still
 * readable: their payload is simply everything after the
 * magic/version words, with no checksum — frameUnwrap() reports
 * `checksummed = false` so callers can warn if they care.
 */

#include <cstdint>
#include <vector>

#include "common/status.hh"

namespace edgert {

/** Result of frameUnwrap(): the format version that was found and
 *  the payload bytes to hand to the body parser. */
struct FramedPayload
{
    std::uint32_t version = 0;
    bool checksummed = false; //!< false for legacy (pre-frame) files
    std::vector<std::uint8_t> payload;
};

/** Wrap `payload` as a framed stream of format `version`. */
std::vector<std::uint8_t>
frameWrap(std::uint32_t magic, std::uint32_t version,
          const std::vector<std::uint8_t> &payload);

/**
 * Validate and strip the frame of an untrusted stream.
 *
 * @param magic         Expected magic word.
 * @param framed_since  First format version that uses the frame;
 *                      older versions are parsed as legacy
 *                      (payload = rest of stream, no CRC).
 * @param max_version   Newest version this build understands.
 * @param bytes         The untrusted stream.
 * @param what          Format name for diagnostics ("engine plan").
 */
Result<FramedPayload>
frameUnwrap(std::uint32_t magic, std::uint32_t framed_since,
            std::uint32_t max_version,
            const std::vector<std::uint8_t> &bytes, const char *what);

} // namespace edgert

#endif // EDGERT_COMMON_FRAMING_HH
