#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace edgert {

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
hashString(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

std::uint64_t
Rng::next()
{
    state_ += kGamma;
    return mix64(state_);
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::below called with n == 0");
    // Rejection sampling to avoid modulo bias.
    std::uint64_t threshold = (0 - n) % n;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::range with lo > hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::gaussian()
{
    // Box-Muller; draw until u1 is nonzero so log() is finite.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::string_view label) const
{
    return Rng(hashCombine(state_, hashString(label)));
}

Rng
Rng::fork(std::uint64_t index) const
{
    return Rng(hashCombine(state_, mix64(index)));
}

} // namespace edgert
