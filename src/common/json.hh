#ifndef EDGERT_COMMON_JSON_HH
#define EDGERT_COMMON_JSON_HH

/**
 * @file
 * Minimal JSON helpers shared by the observability layer and the
 * exporters: canonical string escaping, shortest-round-trip number
 * formatting, and a validating parser. The repo emits JSON in
 * several places (metric snapshots, chrome traces, bench reports);
 * these helpers keep the emitted bytes deterministic and give tests
 * an in-repo way to assert the output actually parses.
 */

#include <string>

namespace edgert {

/**
 * Escape a string for embedding inside a JSON string literal.
 * Handles quotes, backslashes, and all control characters (so
 * hostile kernel/span names cannot break the emitted document).
 */
std::string jsonEscape(const std::string &s);

/**
 * Format a finite double with the shortest representation that
 * round-trips; NaN/Inf (not representable in JSON) become 0. The
 * output is deterministic for equal inputs, which is what makes
 * metric snapshots byte-reproducible.
 */
std::string jsonNumber(double v);

/**
 * Validate that @p text is one complete JSON value (RFC 8259
 * subset: objects, arrays, strings, numbers, true/false/null).
 * @param error If non-null, receives a description of the first
 *              syntax error (byte offset included).
 * @return true when the document parses.
 */
bool jsonValid(const std::string &text, std::string *error = nullptr);

} // namespace edgert

#endif // EDGERT_COMMON_JSON_HH
