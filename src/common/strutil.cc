#include "common/strutil.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace edgert {

std::string
formatBytes(std::uint64_t bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB"};
    double v = static_cast<double>(bytes);
    int u = 0;
    while (v >= 1024.0 && u < 3) {
        v /= 1024.0;
        u++;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
    return buf;
}

std::string
formatNanos(std::uint64_t ns)
{
    char buf[32];
    if (ns < 1000)
        std::snprintf(buf, sizeof(buf), "%llu ns",
                      static_cast<unsigned long long>(ns));
    else if (ns < 1000'000)
        std::snprintf(buf, sizeof(buf), "%.2f us",
                      static_cast<double>(ns) / 1e3);
    else if (ns < 1000'000'000)
        std::snprintf(buf, sizeof(buf), "%.2f ms",
                      static_cast<double>(ns) / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.3f s",
                      static_cast<double>(ns) / 1e9);
    return buf;
}

std::string
formatDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
meanStdCell(double mean, double stddev, int decimals)
{
    return formatDouble(mean, decimals) + "(" +
           formatDouble(stddev, decimals) + ")";
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, delim))
        out.push_back(item);
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

namespace {

/** Shared strto* wrapper: whole-string, errno-checked. */
template <typename T, typename Fn>
Result<T>
parseWith(const std::string &s, Fn fn, const char *what)
{
    if (s.empty())
        return errorStatus(ErrorCode::kInvalidArgument, "empty ",
                           what);
    errno = 0;
    char *end = nullptr;
    auto v = fn(s.c_str(), &end);
    if (end != s.c_str() + s.size())
        return errorStatus(ErrorCode::kInvalidArgument, "'", s,
                           "' is not a valid ", what);
    if (errno == ERANGE)
        return errorStatus(ErrorCode::kOutOfRange, "'", s,
                           "' is out of range for a ", what);
    return static_cast<T>(v);
}

} // namespace

Result<std::int64_t>
parseInt64(const std::string &s)
{
    return parseWith<std::int64_t>(
        s,
        [](const char *p, char **end) {
            return std::strtoll(p, end, 10);
        },
        "integer");
}

Result<std::uint64_t>
parseUint64(const std::string &s)
{
    // strtoull silently accepts "-1" (wrapping); reject signs here.
    if (!s.empty() && (s[0] == '-' || s[0] == '+'))
        return errorStatus(ErrorCode::kInvalidArgument, "'", s,
                           "' is not a valid unsigned integer");
    return parseWith<std::uint64_t>(
        s,
        [](const char *p, char **end) {
            return std::strtoull(p, end, 10);
        },
        "unsigned integer");
}

Result<double>
parseDouble(const std::string &s)
{
    return parseWith<double>(
        s,
        [](const char *p, char **end) {
            return std::strtod(p, end);
        },
        "number");
}

} // namespace edgert
