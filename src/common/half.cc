#include "common/half.hh"

#include <cstring>

namespace edgert {

namespace {

std::uint32_t
floatBits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
bitsFloat(std::uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace

std::uint16_t
floatToHalfBits(float f)
{
    std::uint32_t x = floatBits(f);
    std::uint32_t sign = (x >> 16) & 0x8000u;
    std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xff) - 127;
    std::uint32_t mant = x & 0x7fffffu;

    if (exp == 128) {
        // Inf / NaN: keep a nonzero mantissa bit for NaN.
        return static_cast<std::uint16_t>(
            sign | 0x7c00u | (mant ? 0x200u | (mant >> 13) : 0));
    }
    if (exp > 15) {
        // Overflow to infinity.
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
    if (exp >= -14) {
        // Normal range: round mantissa from 23 to 10 bits (RNE).
        std::uint32_t half_exp =
            static_cast<std::uint32_t>(exp + 15) << 10;
        std::uint32_t half_mant = mant >> 13;
        std::uint32_t rem = mant & 0x1fffu;
        if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1))) {
            half_mant++;
            if (half_mant == 0x400u) {
                // Mantissa overflowed into the exponent.
                half_mant = 0;
                half_exp += 1u << 10;
                if (half_exp >= (31u << 10))
                    return static_cast<std::uint16_t>(sign | 0x7c00u);
            }
        }
        return static_cast<std::uint16_t>(sign | half_exp | half_mant);
    }
    if (exp >= -25) {
        // Subnormal half: shift in the implicit leading one.
        std::uint32_t full = mant | 0x800000u;
        int shift = -exp - 14 + 13;
        std::uint32_t half_mant = full >> shift;
        std::uint32_t rem_mask = (1u << shift) - 1;
        std::uint32_t rem = full & rem_mask;
        std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1)))
            half_mant++;
        return static_cast<std::uint16_t>(sign | half_mant);
    }
    // Underflow to signed zero.
    return static_cast<std::uint16_t>(sign);
}

float
halfBitsToFloat(std::uint16_t h)
{
    std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
    std::uint32_t exp = (h >> 10) & 0x1f;
    std::uint32_t mant = h & 0x3ffu;

    if (exp == 0) {
        if (mant == 0)
            return bitsFloat(sign);
        // Subnormal: normalize.
        int shift = 0;
        while (!(mant & 0x400u)) {
            mant <<= 1;
            shift++;
        }
        mant &= 0x3ffu;
        // value = (1 + mant/1024) * 2^(-14 - shift)
        std::uint32_t fexp =
            static_cast<std::uint32_t>(127 - 14 - shift);
        return bitsFloat(sign | (fexp << 23) | (mant << 13));
    }
    if (exp == 31) {
        return bitsFloat(sign | 0x7f800000u | (mant << 13));
    }
    std::uint32_t fexp = exp - 15 + 127;
    return bitsFloat(sign | (fexp << 23) | (mant << 13));
}

} // namespace edgert
