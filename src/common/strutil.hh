#ifndef EDGERT_COMMON_STRUTIL_HH
#define EDGERT_COMMON_STRUTIL_HH

/**
 * @file
 * String formatting helpers for reports and bench output.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"

namespace edgert {

/** Format a byte count as a human-readable string ("12.45 MB"). */
std::string formatBytes(std::uint64_t bytes);

/** Format a duration in nanoseconds ("3.42 ms", "118 us"). */
std::string formatNanos(std::uint64_t ns);

/** Format a double with fixed decimals. */
std::string formatDouble(double v, int decimals);

/** "mean(std)" cell used throughout the paper's tables. */
std::string meanStdCell(double mean, double stddev, int decimals = 2);

/** Split a string on a delimiter character. */
std::vector<std::string> split(const std::string &s, char delim);

/** True when `s` starts with `prefix`. */
bool startsWith(const std::string &s, const std::string &prefix);

/**
 * Strict numeric parsers for untrusted text (CLI flag values).
 * Unlike std::stoi and friends they never throw: the whole string
 * must parse (no trailing junk, no empty input) and the value must
 * fit the type, otherwise an ErrorCode::kInvalidArgument Status
 * explains what was wrong with the input.
 */
Result<std::int64_t> parseInt64(const std::string &s);
Result<std::uint64_t> parseUint64(const std::string &s);
Result<double> parseDouble(const std::string &s);

} // namespace edgert

#endif // EDGERT_COMMON_STRUTIL_HH
