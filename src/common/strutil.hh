#ifndef EDGERT_COMMON_STRUTIL_HH
#define EDGERT_COMMON_STRUTIL_HH

/**
 * @file
 * String formatting helpers for reports and bench output.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace edgert {

/** Format a byte count as a human-readable string ("12.45 MB"). */
std::string formatBytes(std::uint64_t bytes);

/** Format a duration in nanoseconds ("3.42 ms", "118 us"). */
std::string formatNanos(std::uint64_t ns);

/** Format a double with fixed decimals. */
std::string formatDouble(double v, int decimals);

/** "mean(std)" cell used throughout the paper's tables. */
std::string meanStdCell(double mean, double stddev, int decimals = 2);

/** Split a string on a delimiter character. */
std::vector<std::string> split(const std::string &s, char delim);

/** True when `s` starts with `prefix`. */
bool startsWith(const std::string &s, const std::string &prefix);

} // namespace edgert

#endif // EDGERT_COMMON_STRUTIL_HH
