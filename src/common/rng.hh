#ifndef EDGERT_COMMON_RNG_HH
#define EDGERT_COMMON_RNG_HH

/**
 * @file
 * Deterministic random number generation for the whole simulator.
 *
 * Everything stochastic in EdgeRT (autotuner timing noise, dataset
 * synthesis, surrogate-model margins) flows through Rng so that a
 * run is fully reproducible from its seeds. The generator is
 * SplitMix64: tiny state, excellent statistical quality for
 * simulation purposes, and trivially splittable via hashing.
 */

#include <cstdint>
#include <string_view>

namespace edgert {

/** Mix a 64-bit value through the SplitMix64 finalizer. */
std::uint64_t mix64(std::uint64_t x);

/** Stable FNV-1a hash of a string, for deriving stream seeds. */
std::uint64_t hashString(std::string_view s);

/** Combine two seeds into a new independent seed. */
std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b);

/**
 * Deterministic pseudo-random generator (SplitMix64).
 *
 * Instances are cheap to copy; fork() derives an independent child
 * stream keyed by a label so that adding draws to one consumer never
 * perturbs another.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(mix64(seed ^ kGamma)) {}

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller, no cached spare). */
    double gaussian();

    /** Normal deviate with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /**
     * Derive an independent child generator keyed by a label.
     * @param label Stream name, e.g. "autotuner" or "dataset".
     */
    Rng fork(std::string_view label) const;

    /** Derive an independent child generator keyed by an index. */
    Rng fork(std::uint64_t index) const;

  private:
    static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ull;

    std::uint64_t state_;
};

} // namespace edgert

#endif // EDGERT_COMMON_RNG_HH
