#include "common/framing.hh"

#include "common/binio.hh"
#include "common/crc32.hh"

namespace edgert {

std::vector<std::uint8_t>
frameWrap(std::uint32_t magic, std::uint32_t version,
          const std::vector<std::uint8_t> &payload)
{
    BinWriter w;
    w.u32(magic);
    w.u32(version);
    w.u64(payload.size());
    w.raw(payload.data(), payload.size());
    w.u32(crc32(payload));
    return w.bytes();
}

Result<FramedPayload>
frameUnwrap(std::uint32_t magic, std::uint32_t framed_since,
            std::uint32_t max_version,
            const std::vector<std::uint8_t> &bytes, const char *what)
{
    BinReader r(bytes, BinReader::OnError::kStatus);
    std::uint32_t got_magic = r.u32();
    std::uint32_t version = r.u32();
    if (!r.ok())
        return errorStatus(ErrorCode::kDataLoss, what,
                           ": stream too short for a header (",
                           bytes.size(), " bytes)");
    if (got_magic != magic)
        return errorStatus(ErrorCode::kDataLoss, what,
                           ": bad magic (not a ", what, " file)");
    if (version == 0 || version > max_version)
        return errorStatus(ErrorCode::kDataLoss, what,
                           ": unsupported version ", version,
                           " (this build reads <= ", max_version,
                           ")");

    FramedPayload out;
    out.version = version;

    if (version < framed_since) {
        // Legacy layout: the body is the rest of the stream.
        out.checksummed = false;
        out.payload.assign(bytes.begin() + 8, bytes.end());
        return out;
    }

    std::uint64_t len = r.u64();
    if (!r.ok())
        return errorStatus(ErrorCode::kDataLoss, what,
                           ": truncated length header");
    // Everything after the length word except the 4-byte CRC footer
    // must be exactly the payload.
    if (r.remaining() < sizeof(std::uint32_t) ||
        len != r.remaining() - sizeof(std::uint32_t))
        return errorStatus(ErrorCode::kDataLoss, what,
                           ": payload length mismatch (header says ",
                           len, ", stream carries ",
                           r.remaining() >= sizeof(std::uint32_t)
                               ? r.remaining() - sizeof(std::uint32_t)
                               : 0,
                           " — truncated or extended file)");
    out.payload.resize(static_cast<std::size_t>(len));
    r.raw(out.payload.data(), out.payload.size());
    std::uint32_t want_crc = r.u32();
    if (!r.ok() || !r.atEnd())
        return errorStatus(ErrorCode::kDataLoss, what,
                           ": malformed frame footer");
    std::uint32_t got_crc = crc32(out.payload);
    if (got_crc != want_crc)
        return errorStatus(ErrorCode::kDataLoss, what,
                           ": CRC32 mismatch (stored ", want_crc,
                           ", computed ", got_crc,
                           " — corrupt payload)");
    out.checksummed = true;
    return out;
}

} // namespace edgert
