#ifndef EDGERT_COMMON_TABLE_HH
#define EDGERT_COMMON_TABLE_HH

/**
 * @file
 * ASCII table renderer used by the benchmark harnesses to print
 * paper-style tables (Table II, Table VIII, ...).
 */

#include <ostream>
#include <string>
#include <vector>

namespace edgert {

/**
 * Simple column-aligned text table. Rows may be added cell-by-cell or
 * as whole vectors; render() pads every column to its widest cell.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a full row. Must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Render to a stream with a header separator line. */
    void render(std::ostream &os) const;

    /** Render to a string. */
    std::string toString() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace edgert

#endif // EDGERT_COMMON_TABLE_HH
