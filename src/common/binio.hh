#ifndef EDGERT_COMMON_BINIO_HH
#define EDGERT_COMMON_BINIO_HH

/**
 * @file
 * Little binary (de)serialization helpers used by the network and
 * engine plan formats. Streams are byte vectors; integers are
 * little-endian fixed width; strings are length-prefixed.
 */

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace edgert {

/** Append-only binary stream writer. */
class BinWriter
{
  public:
    const std::vector<std::uint8_t> &bytes() const { return buf_; }

    void
    raw(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    template <typename T>
    void
    scalar(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        raw(&v, sizeof(v));
    }

    void u8(std::uint8_t v) { scalar(v); }
    void u32(std::uint32_t v) { scalar(v); }
    void u64(std::uint64_t v) { scalar(v); }
    void i64(std::int64_t v) { scalar(v); }
    void f32(float v) { scalar(v); }
    void f64(double v) { scalar(v); }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Sequential binary stream reader with bounds checking. */
class BinReader
{
  public:
    explicit BinReader(const std::vector<std::uint8_t> &buf)
        : buf_(&buf)
    {}

    bool atEnd() const { return pos_ == buf_->size(); }

    void
    raw(void *p, std::size_t n)
    {
        if (pos_ + n > buf_->size())
            fatal("BinReader: truncated stream (need ", n, " at ",
                  pos_, " of ", buf_->size(), ")");
        std::memcpy(p, buf_->data() + pos_, n);
        pos_ += n;
    }

    template <typename T>
    T
    scalar()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        raw(&v, sizeof(v));
        return v;
    }

    std::uint8_t u8() { return scalar<std::uint8_t>(); }
    std::uint32_t u32() { return scalar<std::uint32_t>(); }
    std::uint64_t u64() { return scalar<std::uint64_t>(); }
    std::int64_t i64() { return scalar<std::int64_t>(); }
    float f32() { return scalar<float>(); }
    double f64() { return scalar<double>(); }

    std::string
    str()
    {
        std::uint32_t n = u32();
        std::string s(n, '\0');
        raw(s.data(), n);
        return s;
    }

  private:
    const std::vector<std::uint8_t> *buf_;
    std::size_t pos_ = 0;
};

} // namespace edgert

#endif // EDGERT_COMMON_BINIO_HH
