#ifndef EDGERT_COMMON_BINIO_HH
#define EDGERT_COMMON_BINIO_HH

/**
 * @file
 * Little binary (de)serialization helpers used by the network and
 * engine plan formats. Streams are byte vectors; integers are
 * little-endian fixed width; strings are length-prefixed.
 *
 * BinReader has two error policies. The default (OnError::kFatal)
 * throws via fatal() on the first malformed read — appropriate for
 * streams EdgeRT itself just produced. Untrusted streams (anything
 * loaded from a file or received over a wire) must use
 * OnError::kStatus: the first error is recorded as a Status, every
 * subsequent read becomes a zero-filling no-op, and the caller
 * checks ok() once after parsing. Either way the reader never reads
 * out of bounds and never allocates more than the bytes that are
 * actually present.
 */

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/status.hh"

namespace edgert {

/** Append-only binary stream writer. */
class BinWriter
{
  public:
    const std::vector<std::uint8_t> &bytes() const { return buf_; }

    void
    raw(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    template <typename T>
    void
    scalar(T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        raw(&v, sizeof(v));
    }

    void u8(std::uint8_t v) { scalar(v); }
    void u32(std::uint32_t v) { scalar(v); }
    void u64(std::uint64_t v) { scalar(v); }
    void i64(std::int64_t v) { scalar(v); }
    void f32(float v) { scalar(v); }
    void f64(double v) { scalar(v); }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Sequential binary stream reader with bounds checking. */
class BinReader
{
  public:
    /** What a malformed read does: throw via fatal(), or record a
     *  Status and turn the remaining reads into no-ops. */
    enum class OnError
    {
        kFatal,
        kStatus,
    };

    explicit BinReader(const std::vector<std::uint8_t> &buf,
                       OnError on_error = OnError::kFatal)
        : buf_(&buf), on_error_(on_error)
    {}

    /** False once any read failed (OnError::kStatus only). */
    bool ok() const { return status_.ok(); }

    /** The first recorded error, or OK. */
    const Status &status() const { return status_; }

    bool atEnd() const { return pos_ == buf_->size(); }
    std::size_t remaining() const { return buf_->size() - pos_; }

    void
    raw(void *p, std::size_t n)
    {
        if (!status_.ok() || n > remaining()) {
            std::memset(p, 0, n);
            if (status_.ok())
                fail("truncated stream (need ", n,
                     " bytes at offset ", pos_, " of ",
                     buf_->size(), ")");
            return;
        }
        std::memcpy(p, buf_->data() + pos_, n);
        pos_ += n;
    }

    template <typename T>
    T
    scalar()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        raw(&v, sizeof(v));
        return v;
    }

    std::uint8_t u8() { return scalar<std::uint8_t>(); }
    std::uint32_t u32() { return scalar<std::uint32_t>(); }
    std::uint64_t u64() { return scalar<std::uint64_t>(); }
    std::int64_t i64() { return scalar<std::int64_t>(); }
    float f32() { return scalar<float>(); }
    double f64() { return scalar<double>(); }

    std::string
    str()
    {
        std::uint32_t n = u32();
        if (!status_.ok())
            return {};
        // Validate the untrusted length against the bytes actually
        // present BEFORE allocating: a corrupt length must not be
        // able to demand a 4 GiB string.
        if (n > remaining()) {
            fail("string length ", n, " exceeds the ", remaining(),
                 " remaining bytes at offset ", pos_);
            return {};
        }
        std::string s(n, '\0');
        raw(s.data(), n);
        return s;
    }

    /**
     * Read an element count whose elements occupy at least
     * `min_elem_bytes` each, rejecting counts that could not
     * possibly fit in the remaining stream. Use this before any
     * count-sized preallocation (vector::resize and friends).
     * Returns 0 after a failure, so dependent loops do not run.
     */
    std::uint32_t
    count(std::size_t min_elem_bytes)
    {
        std::uint32_t n = u32();
        if (!status_.ok())
            return 0;
        if (min_elem_bytes > 0 &&
            static_cast<std::uint64_t>(n) >
                remaining() / min_elem_bytes) {
            fail("element count ", n, " (>= ", min_elem_bytes,
                 " bytes each) exceeds the ", remaining(),
                 " remaining bytes at offset ", pos_);
            return 0;
        }
        return n;
    }

  private:
    template <typename... Args>
    void
    fail(Args &&...args)
    {
        if (on_error_ == OnError::kFatal)
            fatal("BinReader: ", std::forward<Args>(args)...);
        status_ = errorStatus(ErrorCode::kDataLoss, "BinReader: ",
                              std::forward<Args>(args)...);
    }

    const std::vector<std::uint8_t> *buf_;
    std::size_t pos_ = 0;
    OnError on_error_;
    Status status_;
};

} // namespace edgert

#endif // EDGERT_COMMON_BINIO_HH
