#ifndef EDGERT_COMMON_STATUS_HH
#define EDGERT_COMMON_STATUS_HH

/**
 * @file
 * Recoverable error handling for untrusted-input boundaries.
 *
 * EdgeRT distinguishes three failure classes:
 *
 *  - panic()  — an internal invariant is broken (a bug in EdgeRT);
 *               aborts the process.
 *  - fatal()  — an unrecoverable *user-level* error inside a command
 *               that cannot continue (throws FatalError; the CLI
 *               drivers catch it at top level and exit non-zero).
 *  - Status / Result<T> — anything that crosses a file, CLI or
 *               network boundary: serialized engine plans, timing
 *               caches, network files, flag values, injected faults.
 *               A bad input must never be able to take the process
 *               down; the caller decides whether to retry, degrade,
 *               or report.
 *
 * Status carries an ErrorCode plus a human-readable message and
 * supports context chaining: `st.context("loading 'plan.erte'")`
 * prepends a frame the way gem5's fault messages nest, so the final
 * diagnostic reads outermost-to-innermost.
 */

#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace edgert {

/** Coarse error classification carried by Status. */
enum class ErrorCode
{
    kOk = 0,
    kInvalidArgument, //!< malformed caller-supplied value (CLI flag)
    kDataLoss,        //!< corrupt / truncated serialized data
    kOutOfRange,      //!< value outside its documented domain
    kNotFound,        //!< missing file or entry
    kIoError,         //!< read/write failure
    kUnavailable,     //!< resource temporarily unusable (faults)
    kInternal,        //!< converted internal failure
};

/** Short lower-case code name ("data_loss", "not_found", ...). */
inline const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk:
        return "ok";
      case ErrorCode::kInvalidArgument:
        return "invalid_argument";
      case ErrorCode::kDataLoss:
        return "data_loss";
      case ErrorCode::kOutOfRange:
        return "out_of_range";
      case ErrorCode::kNotFound:
        return "not_found";
      case ErrorCode::kIoError:
        return "io_error";
      case ErrorCode::kUnavailable:
        return "unavailable";
      case ErrorCode::kInternal:
        return "internal";
    }
    return "unknown";
}

/**
 * Success-or-error value: ErrorCode plus message. Default-constructed
 * Status is OK. Marked [[nodiscard]] — dropping one silently is how
 * aborts-on-bad-input bugs start.
 */
class [[nodiscard]] Status
{
  public:
    /** OK status. */
    Status() = default;

    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    bool ok() const { return code_ == ErrorCode::kOk; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /**
     * Return a copy with `what` prepended ("what: <message>").
     * No-op on an OK status.
     */
    Status
    context(const std::string &what) const
    {
        if (ok())
            return *this;
        return Status(code_, what + ": " + message_);
    }

    /** "[data_loss] message", or "OK". */
    std::string
    toString() const
    {
        if (ok())
            return "OK";
        return std::string("[") + errorCodeName(code_) + "] " +
               message_;
    }

  private:
    ErrorCode code_ = ErrorCode::kOk;
    std::string message_;
};

/** Build an error Status by streaming the arguments together. */
template <typename... Args>
Status
errorStatus(ErrorCode code, Args &&...args)
{
    return Status(code,
                  log_detail::concat(std::forward<Args>(args)...));
}

/**
 * A T or the Status explaining why there is none. Accessing the
 * value of an error Result is an internal bug (panic), so callers
 * must check ok() first — the compiler enforces acknowledgement via
 * [[nodiscard]].
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : value_(std::move(value)) {}

    Result(Status status) : status_(std::move(status))
    {
        if (status_.ok())
            panic("Result<T> constructed from an OK status");
    }

    bool ok() const { return value_.has_value(); }

    /** The error (an OK Status when a value is present). */
    const Status &status() const { return status_; }

    T &
    value() &
    {
        require();
        return *value_;
    }

    const T &
    value() const &
    {
        require();
        return *value_;
    }

    T &&
    value() &&
    {
        require();
        return *std::move(value_);
    }

    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    void
    require() const
    {
        if (!ok())
            panic("Result::value() on error: ", status_.toString());
    }

    std::optional<T> value_;
    Status status_;
};

} // namespace edgert

#endif // EDGERT_COMMON_STATUS_HH
