#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace edgert {

void
RunningStat::add(double x)
{
    n_++;
    if (n_ == 1) {
        mean_ = x;
        m2_ = 0.0;
        min_ = max_ = x;
        return;
    }
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    std::size_t n = n_ + other.n_;
    double delta = other.mean_ - mean_;
    double mean = mean_ + delta * static_cast<double>(other.n_) /
                              static_cast<double>(n);
    m2_ = m2_ + other.m2_ +
          delta * delta * static_cast<double>(n_) *
              static_cast<double>(other.n_) / static_cast<double>(n);
    mean_ = mean;
    n_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    if (p <= 0.0 || p >= 1.0)
        fatal("normalQuantile: p must be in (0, 1), got ", p);

    // Acklam's rational approximation.
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};

    const double p_low = 0.02425;
    double x;
    if (p < p_low) {
        double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
              c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        double q = p - 0.5;
        double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r +
              a[4]) * r + a[5]) * q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r +
              b[4]) * r + 1.0);
    } else {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
               c[4]) * q + c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step.
    double e = normalCdf(x) - p;
    double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        fatal("percentile of empty sample");
    if (p < 0.0 || p > 100.0)
        fatal("percentile p out of range: ", p);
    std::sort(xs.begin(), xs.end());
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace edgert
