#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace edgert {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

std::mutex &
sinkMutex()
{
    static std::mutex mu;
    return mu;
}

LogSink &
sinkSlot()
{
    static LogSink sink;
    return sink;
}

void
defaultSink(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "[edgert:%s] %s\n", logLevelName(level),
                 msg.c_str());
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug:
        return "debug";
      case LogLevel::kInfo:
        return "info";
      case LogLevel::kWarn:
        return "warn";
      case LogLevel::kError:
        return "fatal";
    }
    return "?";
}

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level),
                  std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        g_level.load(std::memory_order_relaxed));
}

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    sinkSlot() = std::move(sink);
}

void
setVerbose(bool verbose)
{
    setLogLevel(verbose ? LogLevel::kInfo : LogLevel::kWarn);
}

bool
verbose()
{
    return logLevel() <= LogLevel::kInfo;
}

namespace log_detail {

void
emit(LogLevel level, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    if (const LogSink &sink = sinkSlot())
        sink(level, msg);
    else
        defaultSink(level, msg);
}

void
abortWith(const std::string &msg)
{
    std::fprintf(stderr, "[edgert:panic] %s\n", msg.c_str());
    std::abort();
}

} // namespace log_detail

} // namespace edgert
