#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace edgert {

namespace {
std::atomic<bool> g_verbose{true};
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

namespace log_detail {

void
emit(const char *level, const std::string &msg)
{
    std::fprintf(stderr, "[edgert:%s] %s\n", level, msg.c_str());
}

void
abortWith(const std::string &msg)
{
    std::fprintf(stderr, "[edgert:panic] %s\n", msg.c_str());
    std::abort();
}

} // namespace log_detail

} // namespace edgert
