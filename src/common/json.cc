#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace edgert {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

namespace {

/** Recursive-descent validator over a byte range. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {}

    bool
    parse()
    {
        skipWs();
        if (!value(0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing bytes after JSON value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &what)
    {
        if (error_ && error_->empty())
            *error_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\n' || peek() == '\r'))
            pos_++;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; p++, pos_++)
            if (atEnd() || peek() != *p)
                return fail(std::string("bad literal '") + word +
                            "'");
        return true;
    }

    bool
    string()
    {
        if (atEnd() || peek() != '"')
            return fail("expected string");
        pos_++;
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            unsigned char c =
                static_cast<unsigned char>(text_[pos_]);
            if (c == '"') {
                pos_++;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                pos_++;
                if (atEnd())
                    return fail("dangling escape");
                char e = peek();
                if (e == 'u') {
                    pos_++;
                    for (int i = 0; i < 4; i++, pos_++)
                        if (atEnd() || !std::isxdigit(
                                static_cast<unsigned char>(peek())))
                            return fail("bad \\u escape");
                    continue;
                }
                if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                    e != 'f' && e != 'n' && e != 'r' && e != 't')
                    return fail("bad escape character");
                pos_++;
                continue;
            }
            pos_++;
        }
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (!atEnd() && peek() == '-')
            pos_++;
        if (atEnd() || !std::isdigit(
                static_cast<unsigned char>(peek())))
            return fail("expected digit");
        if (peek() == '0') {
            pos_++;
            if (!atEnd() && std::isdigit(
                    static_cast<unsigned char>(peek())))
                return fail("leading zero in number");
        } else {
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                pos_++;
        }
        if (!atEnd() && peek() == '.') {
            pos_++;
            if (atEnd() || !std::isdigit(
                    static_cast<unsigned char>(peek())))
                return fail("expected fraction digit");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                pos_++;
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            pos_++;
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                pos_++;
            if (atEnd() || !std::isdigit(
                    static_cast<unsigned char>(peek())))
                return fail("expected exponent digit");
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek())))
                pos_++;
        }
        return pos_ > start;
    }

    bool
    value(int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (atEnd())
            return fail("expected value");
        char c = peek();
        if (c == '{')
            return object(depth);
        if (c == '[')
            return array(depth);
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object(int depth)
    {
        pos_++; // '{'
        skipWs();
        if (!atEnd() && peek() == '}') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (atEnd() || peek() != ':')
                return fail("expected ':'");
            pos_++;
            skipWs();
            if (!value(depth + 1))
                return false;
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                pos_++;
                continue;
            }
            if (peek() == '}') {
                pos_++;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(int depth)
    {
        pos_++; // '['
        skipWs();
        if (!atEnd() && peek() == ']') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            if (!value(depth + 1))
                return false;
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                pos_++;
                continue;
            }
            if (peek() == ']') {
                pos_++;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
jsonValid(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    return JsonParser(text, error).parse();
}

} // namespace edgert
