#ifndef EDGERT_COMMON_CRC32_HH
#define EDGERT_COMMON_CRC32_HH

/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the
 * integrity footer of the framed engine-plan and timing-cache file
 * formats. Chosen over a cheap additive checksum because single-bit
 * flips and short burst errors anywhere in the payload are always
 * detected, which is exactly the corruption class a plan file picks
 * up in transit between build and deploy hosts.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace edgert {

/** CRC-32 of `n` bytes; `seed` chains incremental updates. */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t seed = 0);

/** Convenience overload over a byte vector. */
inline std::uint32_t
crc32(const std::vector<std::uint8_t> &bytes, std::uint32_t seed = 0)
{
    return crc32(bytes.data(), bytes.size(), seed);
}

} // namespace edgert

#endif // EDGERT_COMMON_CRC32_HH
