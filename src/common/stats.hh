#ifndef EDGERT_COMMON_STATS_HH
#define EDGERT_COMMON_STATS_HH

/**
 * @file
 * Small statistics helpers used by the measurement harnesses.
 */

#include <cstddef>
#include <vector>

namespace edgert {

/**
 * Streaming mean / variance accumulator (Welford's algorithm).
 * Numerically stable; O(1) memory.
 */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples seen. */
    std::size_t count() const { return n_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample standard deviation; 0 with <2 samples. */
    double stddev() const;

    /** Sample variance (unbiased). */
    double variance() const;

    double min() const { return min_; }
    double max() const { return max_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of a vector; 0 when empty. */
double mean(const std::vector<double> &xs);

/** Unbiased sample standard deviation; 0 with <2 samples. */
double stddev(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile.
 * @param xs  Samples (copied and sorted internally).
 * @param p   Percentile in [0, 100].
 */
double percentile(std::vector<double> xs, double p);

/** Standard normal CDF. */
double normalCdf(double x);

/**
 * Standard normal quantile (inverse CDF), Acklam's approximation
 * refined with one Halley step; |error| < 1e-9 on (0, 1).
 */
double normalQuantile(double p);

} // namespace edgert

#endif // EDGERT_COMMON_STATS_HH
