#ifndef EDGERT_COMMON_HALF_HH
#define EDGERT_COMMON_HALF_HH

/**
 * @file
 * Software IEEE 754 binary16 ("half") arithmetic.
 *
 * EdgeRT quantizes FP32 models to FP16 the way TensorRT does; the
 * functional executor then computes in genuine half precision so
 * precision-induced output differences (paper Finding 2) are real,
 * not injected. Arithmetic is performed by converting to float,
 * operating, and rounding back to half (round-to-nearest-even),
 * which matches how scalar FP16 units behave.
 */

#include <cstdint>

namespace edgert {

/** Convert a float to its binary16 bit pattern (RNE, with denormals). */
std::uint16_t floatToHalfBits(float f);

/** Convert a binary16 bit pattern to float. */
float halfBitsToFloat(std::uint16_t h);

/**
 * IEEE binary16 value type. Storage-only with float-mediated math.
 */
class Half
{
  public:
    Half() : bits_(0) {}

    /** Construct from float with round-to-nearest-even. */
    explicit Half(float f) : bits_(floatToHalfBits(f)) {}

    /** Raw bit pattern accessor. */
    std::uint16_t bits() const { return bits_; }

    /** Rebuild from a raw bit pattern. */
    static Half
    fromBits(std::uint16_t b)
    {
        Half h;
        h.bits_ = b;
        return h;
    }

    /** Widen to float (exact). */
    float toFloat() const { return halfBitsToFloat(bits_); }

    Half operator+(Half o) const { return Half(toFloat() + o.toFloat()); }
    Half operator-(Half o) const { return Half(toFloat() - o.toFloat()); }
    Half operator*(Half o) const { return Half(toFloat() * o.toFloat()); }
    Half operator/(Half o) const { return Half(toFloat() / o.toFloat()); }

    bool operator==(Half o) const { return toFloat() == o.toFloat(); }
    bool operator<(Half o) const { return toFloat() < o.toFloat(); }

  private:
    std::uint16_t bits_;
};

/** Round a float through half precision and back. */
inline float
roundToHalf(float f)
{
    return halfBitsToFloat(floatToHalfBits(f));
}

} // namespace edgert

#endif // EDGERT_COMMON_HALF_HH
