#include "common/threadpool.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

namespace edgert {

double
PoolStats::utilizationPct() const
{
    if (tasks_run == 0 || per_worker_tasks.empty())
        return 0.0;
    std::uint64_t busiest = *std::max_element(
        per_worker_tasks.begin(), per_worker_tasks.end());
    if (busiest == 0)
        return 0.0;
    return 100.0 * static_cast<double>(tasks_run) /
           (static_cast<double>(per_worker_tasks.size()) *
            static_cast<double>(busiest));
}

int
ThreadPool::defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = defaultThreads();
    workers_.reserve(static_cast<std::size_t>(threads));
    per_worker_tasks_.assign(static_cast<std::size_t>(threads), 0);
    per_worker_wait_ns_.assign(static_cast<std::size_t>(threads), 0);
    for (int i = 0; i < threads; i++)
        workers_.emplace_back(
            [this, i] { workerLoop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
        in_flight_++;
        max_queue_depth_ = std::max(max_queue_depth_,
                                    queue_.size());
    }
    work_cv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    if (first_error_) {
        std::exception_ptr e = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    // One task per worker, each pulling indices from a shared
    // counter: coarse items load-balance without per-index queue
    // traffic.
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    std::size_t tasks = std::min<std::size_t>(
        n, static_cast<std::size_t>(size()));
    for (std::size_t t = 0; t < tasks; t++)
        submit([next, n, &body] {
            for (std::size_t i = (*next)++; i < n; i = (*next)++)
                body(i);
        });
    wait();
}

PoolStats
ThreadPool::stats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    PoolStats s;
    s.tasks_run = tasks_run_;
    s.max_queue_depth = max_queue_depth_;
    s.wait_ns = wait_ns_;
    s.per_worker_tasks = per_worker_tasks_;
    s.per_worker_wait_ns = per_worker_wait_ns_;
    return s;
}

void
ThreadPool::workerLoop(std::size_t worker)
{
    for (;;) {
        std::function<void()> task;
        {
            auto wait_start = std::chrono::steady_clock::now();
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(
                lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            // Count idle time only when the wakeup yields work, so
            // the shutdown wakeup doesn't inflate the numbers.
            auto waited = std::chrono::steady_clock::now() -
                          wait_start;
            std::uint64_t ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<
                    std::chrono::nanoseconds>(waited)
                    .count());
            wait_ns_ += ns;
            per_worker_wait_ns_[worker] += ns;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mu_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mu_);
            in_flight_--;
            tasks_run_++;
            per_worker_tasks_[worker]++;
        }
        idle_cv_.notify_all();
    }
}

} // namespace edgert
