#ifndef EDGERT_COMMON_CLIFLAGS_HH
#define EDGERT_COMMON_CLIFLAGS_HH

/**
 * @file
 * The one `--opt value` / `--opt=value` argument scanner shared by
 * the EdgeRT command-line drivers (edgertexec, edgertserve,
 * edgertdeploy). Each driver used to carry its own copy of the
 * inline-value splitting and the strict numeric parsing; this class
 * is that logic, extracted verbatim:
 *
 *     FlagParser flags(argc, argv);
 *     while (flags.next()) {
 *         if (flags.is("--model"))
 *             model = flags.value();
 *         else if (flags.is("--runs"))
 *             runs = static_cast<int>(flags.intValue());
 *         else
 *             ... unknown option ...
 *     }
 *
 * Values may be inline (`--runs=5`) or the next argv entry
 * (`--runs 5`). Numeric accessors go through the strict
 * common/strutil parsers and fatal() with a diagnostic naming the
 * flag — a malformed value must exit non-zero with a message, never
 * surface as an uncaught std::sto* exception. Tokens that do not
 * start with `--` (subcommands, positional operands) come through
 * arg() unsplit.
 */

#include <cstdint>
#include <optional>
#include <string>

namespace edgert {

/** Sequential argv scanner with --opt=value splitting. */
class FlagParser
{
  public:
    FlagParser(int argc, char **argv) : argc_(argc), argv_(argv) {}

    /** Advance to the next argument; false when argv is exhausted. */
    bool next();

    /** Current option name (inline `=value` stripped), or the raw
     *  token for non-option arguments. */
    const std::string &arg() const { return arg_; }

    /** True when the current argument is exactly `name`. */
    bool is(const char *name) const { return arg_ == name; }

    /** True when the current token starts with "--". */
    bool isOption() const;

    /**
     * The current option's value: the inline `=value` if present,
     * otherwise the next argv entry (consumed). fatal()s when
     * neither exists.
     */
    std::string value();

    /** value() parsed as a strict double; fatal()s on a malformed
     *  value, naming the flag. */
    double numberValue();

    /** value() parsed as a strict signed integer. */
    std::int64_t intValue();

    /** value() parsed as a strict unsigned integer. */
    std::uint64_t unsignedValue();

  private:
    int argc_;
    char **argv_;
    int i_ = 0; //!< argv index of the current argument
    std::string arg_;
    std::optional<std::string> inline_value_;
};

} // namespace edgert

#endif // EDGERT_COMMON_CLIFLAGS_HH
