#ifndef EDGERT_COMMON_LOGGING_HH
#define EDGERT_COMMON_LOGGING_HH

/**
 * @file
 * Lightweight logging and error-reporting utilities, gem5-flavoured.
 *
 * fatal()  — unrecoverable user-level error (bad config / arguments);
 *            throws FatalError so tests can assert on it.
 * panic()  — internal invariant violation (a bug in EdgeRT itself);
 *            aborts the process after printing.
 * warn()   — something is suspicious but the run can continue.
 * inform() — normal status output.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace edgert {

/** Exception thrown by fatal(); carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace log_detail {

/** Stream one or more arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

void emit(const char *level, const std::string &msg);
[[noreturn]] void abortWith(const std::string &msg);

} // namespace log_detail

/** Global verbosity switch; when false, inform() output is suppressed. */
void setVerbose(bool verbose);
bool verbose();

/** Print an informational message (suppressed when not verbose). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (verbose())
        log_detail::emit("info", log_detail::concat(args...));
}

/** Print a warning; always shown. */
template <typename... Args>
void
warn(Args &&...args)
{
    log_detail::emit("warn", log_detail::concat(args...));
}

/** Report a user-level error and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = log_detail::concat(args...);
    log_detail::emit("fatal", msg);
    throw FatalError(msg);
}

/** Report an internal bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    log_detail::abortWith(log_detail::concat(args...));
}

} // namespace edgert

#endif // EDGERT_COMMON_LOGGING_HH
