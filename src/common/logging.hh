#ifndef EDGERT_COMMON_LOGGING_HH
#define EDGERT_COMMON_LOGGING_HH

/**
 * @file
 * Lightweight logging and error-reporting utilities, gem5-flavoured.
 *
 * fatal()  — unrecoverable user-level error (bad config / arguments);
 *            throws FatalError so tests can assert on it.
 * panic()  — internal invariant violation (a bug in EdgeRT itself);
 *            aborts the process after printing.
 * warn()   — something is suspicious but the run can continue.
 * inform() — normal status output.
 * debug()  — chatty diagnostics (tactic choices, cache probes);
 *            suppressed unless the level is lowered to kDebug.
 *
 * Output is filtered by a global LogLevel and routed through a
 * pluggable LogSink. The default sink writes
 * `[edgert:<level>] <msg>\n` to stderr under a mutex so concurrent
 * worker threads never interleave partial lines.
 */

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace edgert {

/** Exception thrown by fatal(); carries the formatted message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Severity levels, least to most severe. */
enum class LogLevel
{
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
};

/** Short lower-case name ("debug", "info", "warn", "error"). */
const char *logLevelName(LogLevel level);

/** Messages below `level` are dropped. Default: kInfo. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/**
 * Receives every message that passes the level filter. Called with
 * the emit mutex held, so sinks need no locking of their own but
 * must not log reentrantly.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/** Replace the sink; an empty function restores the stderr default.
 *  Returns nothing — callers wanting to restore use setLogSink({}). */
void setLogSink(LogSink sink);

namespace log_detail {

/** Stream one or more arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

void emit(LogLevel level, const std::string &msg);
[[noreturn]] void abortWith(const std::string &msg);

} // namespace log_detail

/**
 * Legacy verbosity switch, kept for existing callers:
 * setVerbose(true) == setLogLevel(kInfo), setVerbose(false) ==
 * setLogLevel(kWarn). verbose() reports whether inform() output is
 * currently shown.
 */
void setVerbose(bool verbose);
bool verbose();

/** Print a diagnostic message (shown only at kDebug). */
template <typename... Args>
void
debug(Args &&...args)
{
    if (logLevel() <= LogLevel::kDebug)
        log_detail::emit(LogLevel::kDebug,
                         log_detail::concat(args...));
}

/** Print an informational message (suppressed when not verbose). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() <= LogLevel::kInfo)
        log_detail::emit(LogLevel::kInfo,
                         log_detail::concat(args...));
}

/** Print a warning (suppressed only above kWarn). */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() <= LogLevel::kWarn)
        log_detail::emit(LogLevel::kWarn,
                         log_detail::concat(args...));
}

/** Report a user-level error and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = log_detail::concat(args...);
    log_detail::emit(LogLevel::kError, msg);
    throw FatalError(msg);
}

/** Report an internal bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    log_detail::abortWith(log_detail::concat(args...));
}

} // namespace edgert

#endif // EDGERT_COMMON_LOGGING_HH
