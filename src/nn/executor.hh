#ifndef EDGERT_NN_EXECUTOR_HH
#define EDGERT_NN_EXECUTOR_HH

/**
 * @file
 * Reference (functional) executor for network graphs.
 *
 * Runs a Network on dense host tensors. Three precision modes:
 *
 *  - kFp32: plain float math; the semantic gold standard.
 *  - kFp16: inputs/weights rounded to binary16, products accumulated
 *    in fp32 within a reduction tile, tile partials rounded to fp16
 *    and combined in fp16. The tile size is configurable: different
 *    tile sizes model the different accumulation orders of different
 *    CUDA kernel tactics, which is the mechanical source of the
 *    paper's Finding 2 (engines disagreeing on borderline images).
 *  - kInt8: symmetric per-tensor dynamic quantization with int32
 *    accumulation; exactly associative, hence tactic-independent.
 *
 * The executor is deliberately simple and single-threaded; it exists
 * for semantic validation (fusion passes must preserve its output)
 * and for small-model experiments, not for speed.
 */

#include <unordered_map>

#include "nn/network.hh"
#include "nn/weights.hh"

namespace edgert::nn {

/**
 * Numeric precision of the reference executor.
 *
 * kMixed is an *engine-level* label only: a mixed engine carries a
 * per-step precision plan in which every step is one of the three
 * concrete precisions (the per-layer selector in core/precision.hh
 * decides which). The executor itself never runs in kMixed.
 */
enum class Precision { kFp32, kFp16, kInt8, kMixed };

/** Printable precision name. */
const char *precisionName(Precision p);

/** Parse "fp32" | "fp16" | "int8" | "mixed" (fatal otherwise). */
Precision parsePrecisionName(const std::string &s);

/** Execution options. */
struct ExecOptions
{
    Precision precision = Precision::kFp32;

    /**
     * Reduction tile for fp16 accumulation; 0 means one tile
     * (sequential fp32 accumulation, rounded once at the end).
     * Different kernel tactics use different tiles.
     */
    std::int64_t accum_tile = 0;
};

/**
 * Functional interpreter over a network graph.
 */
class Executor
{
  public:
    /**
     * @param net     Graph to execute (must validate()).
     * @param weights Weight store bound to the same network.
     * @param opts    Precision / accumulation options.
     */
    Executor(const Network &net, const WeightsStore &weights,
             const ExecOptions &opts = {});

    /**
     * Run one forward pass.
     * @param inputs Map from input tensor name to value.
     * @return Map holding every tensor marked as a network output.
     */
    std::unordered_map<std::string, Tensor>
    run(const std::unordered_map<std::string, Tensor> &inputs) const;

    /** Convenience for single-input, single-output networks. */
    Tensor runSimple(const Tensor &input) const;

    const ExecOptions &options() const { return opts_; }

  private:
    Tensor execLayer(const Layer &l,
                     const std::vector<const Tensor *> &ins) const;

    /** Round a value according to the precision mode. */
    float castElem(float v) const;

    const Network *net_;
    const WeightsStore *weights_;
    ExecOptions opts_;
};

} // namespace edgert::nn

#endif // EDGERT_NN_EXECUTOR_HH
