#ifndef EDGERT_NN_WEIGHTS_HH
#define EDGERT_NN_WEIGHTS_HH

/**
 * @file
 * Synthetic, lazily-materialized weight store.
 *
 * The paper's models come from a model zoo with up to 132 M trained
 * parameters; holding all of them resident for 13 models would cost
 * gigabytes and their exact values do not matter to any measured
 * quantity except through the surrogate accuracy model. The store
 * therefore keeps only (seed, count) metadata per layer and
 * materializes He-initialized weights on demand — the functional
 * executor does this for the small networks used in tests and
 * examples. Materialization is deterministic: same network + seed
 * always yields bit-identical weights.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nn/network.hh"

namespace edgert::nn {

/**
 * Deterministic synthetic weights for one network.
 */
class WeightsStore
{
  public:
    /**
     * Bind a store to a network.
     * @param net  Network whose layers are parameterized.
     * @param seed Master seed; forked per layer by name.
     */
    WeightsStore(const Network &net, std::uint64_t seed);

    /** Seed of one layer's weight stream. */
    std::uint64_t layerSeed(const Layer &l) const;

    /**
     * Materialize a layer's parameter blob.
     *
     * Layout: main weights first, then bias (when present), then any
     * auxiliary blobs (batch-norm mean/var). Total length equals
     * Network::layerParamCount(l).
     */
    std::vector<float> materialize(const Layer &l) const;

    /** Total parameter count (delegates to the network). */
    std::int64_t paramCount() const { return net_->paramCount(); }

    const Network &network() const { return *net_; }
    std::uint64_t seed() const { return seed_; }

    /**
     * Install explicit values for one layer, overriding the
     * seed-derived blob (used by the weight-folding transform to
     * carry folded parameters into a derived network). The blob
     * length must equal the layer's parameter count.
     */
    void setOverride(const std::string &layer_name,
                     std::vector<float> blob);

    /** True when the layer's weights were explicitly installed. */
    bool hasOverride(const std::string &layer_name) const;

  private:
    const Network *net_;
    std::uint64_t seed_;
    std::unordered_map<std::string, std::vector<float>> overrides_;
};

} // namespace edgert::nn

#endif // EDGERT_NN_WEIGHTS_HH
