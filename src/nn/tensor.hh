#ifndef EDGERT_NN_TENSOR_HH
#define EDGERT_NN_TENSOR_HH

/**
 * @file
 * Tensor shapes, element types and a dense host tensor buffer.
 *
 * Shapes are NCHW. The simulator mostly manipulates TensorDesc
 * (shape + dtype metadata); dense Tensor buffers are only
 * materialized by the functional executor and the tests.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace edgert::nn {

/** Element types supported by the stack. */
enum class DataType { kFloat32, kFloat16, kInt8, kInt32 };

/** Size of one element of the given type, in bytes. */
std::size_t dataTypeSize(DataType t);

/** Human-readable dtype name ("fp32", "fp16", "int8", "int32"). */
const char *dataTypeName(DataType t);

/**
 * Tensor dimensions in NCHW order. n==0 marks an invalid/unset shape.
 */
struct Dims
{
    std::int64_t n = 0;
    std::int64_t c = 0;
    std::int64_t h = 0;
    std::int64_t w = 0;

    Dims() = default;
    Dims(std::int64_t n_, std::int64_t c_, std::int64_t h_,
         std::int64_t w_)
        : n(n_), c(c_), h(h_), w(w_)
    {}

    /** Total number of elements. */
    std::int64_t volume() const { return n * c * h * w; }

    /** True when every extent is positive. */
    bool valid() const { return n > 0 && c > 0 && h > 0 && w > 0; }

    bool operator==(const Dims &o) const = default;

    /** "1x3x224x224" */
    std::string toString() const;
};

/**
 * Metadata describing one named tensor flowing through a network.
 */
struct TensorDesc
{
    std::string name;
    Dims dims;
    DataType dtype = DataType::kFloat32;

    /** Size of the dense tensor in bytes. */
    std::size_t
    bytes() const
    {
        return static_cast<std::size_t>(dims.volume()) *
               dataTypeSize(dtype);
    }
};

/**
 * Dense host tensor with float storage, used by the reference
 * executor. Layout is contiguous NCHW.
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Allocate a zero-filled tensor of the given shape. */
    explicit Tensor(const Dims &dims);

    const Dims &dims() const { return dims_; }
    std::int64_t volume() const { return dims_.volume(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    std::vector<float> &storage() { return data_; }
    const std::vector<float> &storage() const { return data_; }

    /** Element accessor (NCHW). No bounds checking in release. */
    float &
    at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w)
    {
        return data_[offset(n, c, h, w)];
    }

    float
    at(std::int64_t n, std::int64_t c, std::int64_t h,
       std::int64_t w) const
    {
        return data_[offset(n, c, h, w)];
    }

    /** Flat accessor. */
    float &operator[](std::int64_t i) { return data_[i]; }
    float operator[](std::int64_t i) const { return data_[i]; }

    /** Fill with a constant. */
    void fill(float v);

  private:
    std::int64_t
    offset(std::int64_t n, std::int64_t c, std::int64_t h,
           std::int64_t w) const
    {
        return ((n * dims_.c + c) * dims_.h + h) * dims_.w + w;
    }

    Dims dims_;
    std::vector<float> data_;
};

} // namespace edgert::nn

#endif // EDGERT_NN_TENSOR_HH
