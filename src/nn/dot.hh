#ifndef EDGERT_NN_DOT_HH
#define EDGERT_NN_DOT_HH

/**
 * @file
 * Graphviz (dot) export of network graphs — handy for inspecting
 * the zoo models and for diffing a network against its optimized /
 * folded form.
 */

#include <ostream>
#include <string>

#include "nn/network.hh"

namespace edgert::nn {

/** Options controlling the dot rendering. */
struct DotOptions
{
    bool show_shapes = true; //!< annotate edges with tensor dims
    bool show_params = true; //!< annotate layers with param counts
};

/** Write the network as a Graphviz digraph. */
void writeDot(std::ostream &os, const Network &net,
              const DotOptions &opts = {});

/** Render to a string. */
std::string toDot(const Network &net, const DotOptions &opts = {});

} // namespace edgert::nn

#endif // EDGERT_NN_DOT_HH
