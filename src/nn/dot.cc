#include "nn/dot.hh"

#include <sstream>

namespace edgert::nn {

namespace {

/** Escape a string for a dot label. */
std::string
escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

const char *
kindColor(LayerKind k)
{
    switch (k) {
      case LayerKind::kInput: return "lightblue";
      case LayerKind::kConvolution:
      case LayerKind::kDeconvolution: return "lightsalmon";
      case LayerKind::kFullyConnected: return "khaki";
      case LayerKind::kPooling: return "lightgreen";
      case LayerKind::kConcat:
      case LayerKind::kEltwise: return "plum";
      case LayerKind::kSoftmax:
      case LayerKind::kRegion:
      case LayerKind::kDetectionOutput: return "lightcyan";
      default: return "white";
    }
}

} // namespace

void
writeDot(std::ostream &os, const Network &net, const DotOptions &opts)
{
    os << "digraph \"" << escape(net.name()) << "\" {\n";
    os << "  rankdir=TB;\n  node [shape=box, style=filled];\n";

    for (const auto &l : net.layers()) {
        std::ostringstream label;
        label << l.name << "\\n" << layerKindName(l.kind);
        if (opts.show_params) {
            std::int64_t params = net.layerParamCount(l);
            if (params > 0)
                label << "\\n" << params << " params";
        }
        os << "  \"" << escape(l.name) << "\" [label=\""
           << escape(label.str()) << "\", fillcolor="
           << kindColor(l.kind) << "];\n";
    }

    for (const auto &l : net.layers()) {
        for (const auto &in : l.inputs) {
            std::int32_t pid = net.producerOf(in);
            if (pid < 0)
                continue;
            os << "  \"" << escape(net.layer(pid).name) << "\" -> \""
               << escape(l.name) << "\"";
            if (opts.show_shapes)
                os << " [label=\""
                   << net.tensor(in).dims.toString() << "\"]";
            os << ";\n";
        }
    }

    // Mark outputs.
    for (const auto &o : net.outputs()) {
        std::int32_t pid = net.producerOf(o);
        if (pid >= 0)
            os << "  \"" << escape(net.layer(pid).name)
               << "\" [penwidth=3];\n";
    }
    os << "}\n";
}

std::string
toDot(const Network &net, const DotOptions &opts)
{
    std::ostringstream oss;
    writeDot(oss, net, opts);
    return oss.str();
}

} // namespace edgert::nn
