#include "nn/network.hh"

#include <algorithm>

#include "common/logging.hh"

namespace edgert::nn {

namespace {

/** Conv output extent (floor convention). */
std::int64_t
convOut(std::int64_t in, std::int64_t kernel, std::int64_t stride,
        std::int64_t pad, std::int64_t dilation)
{
    std::int64_t eff_k = dilation * (kernel - 1) + 1;
    std::int64_t out = (in + 2 * pad - eff_k) / stride + 1;
    return out;
}

/** Pool output extent (Caffe's ceil convention). */
std::int64_t
poolOut(std::int64_t in, std::int64_t kernel, std::int64_t stride,
        std::int64_t pad)
{
    std::int64_t num = in + 2 * pad - kernel;
    std::int64_t out = (num + stride - 1) / stride + 1;
    // Caffe clips the last window so it starts inside the padded image.
    if (pad > 0 && (out - 1) * stride >= in + pad)
        out--;
    return out;
}

} // namespace

Network::Network(std::string name) : name_(std::move(name)) {}

Dims
Network::inputDims(const std::string &tensor_name) const
{
    return tensor(tensor_name).dims;
}

std::string
Network::appendLayer(LayerKind kind, const std::string &name,
                     LayerParams params,
                     std::vector<std::string> inputs,
                     const Dims &out_dims)
{
    if (tensors_.count(name))
        fatal("network '", name_, "': duplicate tensor/layer name '",
              name, "'");
    if (!out_dims.valid())
        fatal("network '", name_, "': layer '", name,
              "' inferred invalid output dims ", out_dims.toString());
    for (const auto &in : inputs) {
        if (!tensors_.count(in))
            fatal("network '", name_, "': layer '", name,
                  "' consumes unknown tensor '", in, "'");
    }

    Layer l;
    l.id = static_cast<std::int32_t>(layers_.size());
    l.name = name;
    l.kind = kind;
    l.params = std::move(params);
    l.inputs = std::move(inputs);
    l.output = name;
    layers_.push_back(std::move(l));

    tensors_[name] = TensorDesc{name, out_dims, DataType::kFloat32};
    producer_[name] = layers_.back().id;
    return name;
}

std::string
Network::addInput(const std::string &name, const Dims &dims)
{
    auto out = appendLayer(LayerKind::kInput, name, NoParams{}, {}, dims);
    inputs_.push_back(out);
    return out;
}

std::string
Network::addConvolution(const std::string &name,
                        const std::string &input, const ConvParams &p)
{
    Dims in = inputDims(input);
    if (p.out_channels <= 0)
        fatal("conv '", name, "': out_channels must be positive");
    if (p.groups <= 0 || in.c % p.groups != 0 ||
        p.out_channels % p.groups != 0)
        fatal("conv '", name, "': groups ", p.groups,
              " incompatible with channels ", in.c, "->",
              p.out_channels);
    Dims out(in.n, p.out_channels,
             convOut(in.h, p.kh(), p.stride, p.ph(), p.dilation),
             convOut(in.w, p.kw(), p.stride, p.pw(), p.dilation));
    return appendLayer(LayerKind::kConvolution, name, p, {input}, out);
}

std::string
Network::addDeconvolution(const std::string &name,
                          const std::string &input, const ConvParams &p)
{
    Dims in = inputDims(input);
    Dims out(in.n, p.out_channels,
             (in.h - 1) * p.stride - 2 * p.ph() + p.kh(),
             (in.w - 1) * p.stride - 2 * p.pw() + p.kw());
    return appendLayer(LayerKind::kDeconvolution, name, p, {input}, out);
}

std::string
Network::addPooling(const std::string &name, const std::string &input,
                    const PoolParams &p)
{
    Dims in = inputDims(input);
    Dims out = in;
    if (p.global) {
        out.h = out.w = 1;
    } else {
        out.h = poolOut(in.h, p.kernel, p.stride, p.pad);
        out.w = poolOut(in.w, p.kernel, p.stride, p.pad);
    }
    return appendLayer(LayerKind::kPooling, name, p, {input}, out);
}

std::string
Network::addFullyConnected(const std::string &name,
                           const std::string &input, const FcParams &p)
{
    Dims in = inputDims(input);
    if (p.out_features <= 0)
        fatal("fc '", name, "': out_features must be positive");
    Dims out(in.n, p.out_features, 1, 1);
    return appendLayer(LayerKind::kFullyConnected, name, p, {input},
                       out);
}

std::string
Network::addActivation(const std::string &name, const std::string &input,
                       const ActivationParams &p)
{
    return appendLayer(LayerKind::kActivation, name, p, {input},
                       inputDims(input));
}

std::string
Network::addBatchNorm(const std::string &name, const std::string &input,
                      const BatchNormParams &p)
{
    return appendLayer(LayerKind::kBatchNorm, name, p, {input},
                       inputDims(input));
}

std::string
Network::addScale(const std::string &name, const std::string &input,
                  const ScaleParams &p)
{
    return appendLayer(LayerKind::kScale, name, p, {input},
                       inputDims(input));
}

std::string
Network::addLrn(const std::string &name, const std::string &input,
                const LrnParams &p)
{
    return appendLayer(LayerKind::kLRN, name, p, {input},
                       inputDims(input));
}

std::string
Network::addConcat(const std::string &name,
                   const std::vector<std::string> &inputs)
{
    if (inputs.empty())
        fatal("concat '", name, "': needs at least one input");
    Dims out = inputDims(inputs[0]);
    for (std::size_t i = 1; i < inputs.size(); i++) {
        Dims d = inputDims(inputs[i]);
        if (d.n != out.n || d.h != out.h || d.w != out.w)
            fatal("concat '", name, "': input ", inputs[i],
                  " dims ", d.toString(), " mismatch ",
                  out.toString());
        out.c += d.c;
    }
    return appendLayer(LayerKind::kConcat, name, ConcatParams{}, inputs,
                       out);
}

std::string
Network::addEltwise(const std::string &name,
                    const std::vector<std::string> &inputs,
                    const EltwiseParams &p)
{
    if (inputs.size() < 2)
        fatal("eltwise '", name, "': needs at least two inputs");
    Dims out = inputDims(inputs[0]);
    for (const auto &in : inputs) {
        if (!(inputDims(in) == out))
            fatal("eltwise '", name, "': shape mismatch on ", in);
    }
    return appendLayer(LayerKind::kEltwise, name, p, inputs, out);
}

std::string
Network::addSoftmax(const std::string &name, const std::string &input)
{
    return appendLayer(LayerKind::kSoftmax, name, SoftmaxParams{},
                       {input}, inputDims(input));
}

std::string
Network::addUpsample(const std::string &name, const std::string &input,
                     const UpsampleParams &p)
{
    Dims in = inputDims(input);
    if (p.factor <= 0)
        fatal("upsample '", name, "': factor must be positive");
    Dims out(in.n, in.c, in.h * p.factor, in.w * p.factor);
    return appendLayer(LayerKind::kUpsample, name, p, {input}, out);
}

std::string
Network::addFlatten(const std::string &name, const std::string &input)
{
    Dims in = inputDims(input);
    Dims out(in.n, in.c * in.h * in.w, 1, 1);
    return appendLayer(LayerKind::kFlatten, name, FlattenParams{},
                       {input}, out);
}

std::string
Network::addDropout(const std::string &name, const std::string &input,
                    const DropoutParams &p)
{
    return appendLayer(LayerKind::kDropout, name, p, {input},
                       inputDims(input));
}

std::string
Network::addRegion(const std::string &name, const std::string &input,
                   const RegionParams &p)
{
    return appendLayer(LayerKind::kRegion, name, p, {input},
                       inputDims(input));
}

std::string
Network::addDetectionOutput(const std::string &name,
                            const std::vector<std::string> &inputs,
                            const DetectionOutputParams &p)
{
    if (inputs.empty())
        fatal("detection '", name, "': needs inputs");
    Dims in = inputDims(inputs[0]);
    Dims out(in.n, p.keep_top_k, 7, 1);
    return appendLayer(LayerKind::kDetectionOutput, name, p, inputs,
                       out);
}

std::string
Network::addIdentity(const std::string &name, const std::string &input)
{
    return appendLayer(LayerKind::kIdentity, name, NoParams{}, {input},
                       inputDims(input));
}

void
Network::markOutput(const std::string &tensor_name)
{
    if (!tensors_.count(tensor_name))
        fatal("markOutput: unknown tensor '", tensor_name, "'");
    if (std::find(outputs_.begin(), outputs_.end(), tensor_name) ==
        outputs_.end())
        outputs_.push_back(tensor_name);
}

const Layer &
Network::layer(std::int32_t id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= layers_.size())
        panic("layer id out of range: ", id);
    return layers_[id];
}

bool
Network::hasTensor(const std::string &name) const
{
    return tensors_.count(name) > 0;
}

const TensorDesc &
Network::tensor(const std::string &name) const
{
    auto it = tensors_.find(name);
    if (it == tensors_.end())
        fatal("network '", name_, "': unknown tensor '", name, "'");
    return it->second;
}

std::int32_t
Network::producerOf(const std::string &tensor_name) const
{
    auto it = producer_.find(tensor_name);
    return it == producer_.end() ? -1 : it->second;
}

std::vector<std::int32_t>
Network::consumersOf(const std::string &tensor_name) const
{
    std::vector<std::int32_t> out;
    for (const auto &l : layers_)
        for (const auto &in : l.inputs)
            if (in == tensor_name) {
                out.push_back(l.id);
                break;
            }
    return out;
}

std::int64_t
Network::layerParamCount(const Layer &l) const
{
    if (l.inputs.empty())
        return 0;
    Dims in = tensor(l.inputs[0]).dims;
    std::int64_t in_feats = l.kind == LayerKind::kFullyConnected
                                ? in.c * in.h * in.w
                                : in.c;
    return l.paramCount(in_feats);
}

std::int64_t
Network::paramCount() const
{
    std::int64_t total = 0;
    for (const auto &l : layers_)
        total += layerParamCount(l);
    return total;
}

std::int64_t
Network::convCount() const
{
    std::int64_t n = 0;
    for (const auto &l : layers_)
        if (l.kind == LayerKind::kConvolution ||
            l.kind == LayerKind::kDeconvolution)
            n++;
    return n;
}

std::int64_t
Network::maxPoolCount() const
{
    std::int64_t n = 0;
    for (const auto &l : layers_)
        if (l.kind == LayerKind::kPooling &&
            l.as<PoolParams>().mode == PoolParams::Mode::kMax)
            n++;
    return n;
}

std::int64_t
Network::modelSizeBytes() const
{
    // FP32 weights + ~160 bytes of prototxt-ish metadata per layer.
    constexpr std::int64_t kPerLayerMeta = 160;
    return paramCount() * 4 +
           static_cast<std::int64_t>(layers_.size()) * kPerLayerMeta;
}

void
Network::validate() const
{
    if (inputs_.empty())
        fatal("network '", name_, "': no inputs declared");
    if (outputs_.empty())
        fatal("network '", name_, "': no outputs marked");
    // Construction order must be topological: every layer's inputs
    // must be produced by an earlier layer.
    for (const auto &l : layers_) {
        for (const auto &in : l.inputs) {
            std::int32_t p = producerOf(in);
            if (p < 0 || p >= l.id)
                fatal("network '", name_, "': layer '", l.name,
                      "' input '", in, "' not produced earlier");
        }
    }
}

} // namespace edgert::nn
