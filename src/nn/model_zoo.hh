#ifndef EDGERT_NN_MODEL_ZOO_HH
#define EDGERT_NN_MODEL_ZOO_HH

/**
 * @file
 * The model zoo: constructs the 13 networks the paper evaluates
 * (Table II), with (de)convolution and max-pool layer counts matching
 * the paper exactly and parameter footprints close to the published
 * un-optimized model sizes.
 *
 * Architectures follow the published designs, including
 * inception-v4's factorized rectangular (1x7 / 7x1, 1x3 / 3x1)
 * towers.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "nn/network.hh"

namespace edgert::nn {

/** Computer-vision task category of a zoo model. */
enum class VisionTask { kClassification, kDetection, kSegmentation };

/** Printable task name. */
const char *visionTaskName(VisionTask t);

/** Static metadata for one zoo model (Table II row). */
struct ZooModelInfo
{
    std::string name;
    VisionTask task;
    std::string framework;       //!< training framework in the paper
    std::int64_t paper_convs;    //!< conv layer count per Table II
    std::int64_t paper_maxpools; //!< max-pool count per Table II
    double paper_size_mb;        //!< un-optimized model size (MB)
};

/** Names of all 13 zoo models, in Table II order. */
const std::vector<std::string> &zooModelNames();

/** Metadata lookup; fatal on unknown name. */
const ZooModelInfo &zooModelInfo(const std::string &name);

/**
 * Build a zoo model by name.
 * @param name  One of zooModelNames().
 * @param batch Batch size (N dimension of the input).
 */
Network buildZooModel(const std::string &name, std::int64_t batch = 1);

} // namespace edgert::nn

#endif // EDGERT_NN_MODEL_ZOO_HH
