#include "nn/weights.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace edgert::nn {

WeightsStore::WeightsStore(const Network &net, std::uint64_t seed)
    : net_(&net), seed_(seed)
{}

std::uint64_t
WeightsStore::layerSeed(const Layer &l) const
{
    return hashCombine(seed_, hashString(l.name));
}

void
WeightsStore::setOverride(const std::string &layer_name,
                          std::vector<float> blob)
{
    overrides_[layer_name] = std::move(blob);
}

bool
WeightsStore::hasOverride(const std::string &layer_name) const
{
    return overrides_.count(layer_name) > 0;
}

std::vector<float>
WeightsStore::materialize(const Layer &l) const
{
    std::int64_t count = net_->layerParamCount(l);
    auto ov = overrides_.find(l.name);
    if (ov != overrides_.end()) {
        if (static_cast<std::int64_t>(ov->second.size()) != count)
            fatal("weights override for '", l.name, "' has ",
                  ov->second.size(), " values, expected ", count);
        return ov->second;
    }
    std::vector<float> blob(static_cast<std::size_t>(count));
    if (count == 0)
        return blob;

    Rng rng(layerSeed(l));

    // Fan-in for He initialization.
    double fan_in = 1.0;
    std::int64_t main_weights = count;
    if (l.kind == LayerKind::kConvolution ||
        l.kind == LayerKind::kDeconvolution) {
        const auto &p = l.as<ConvParams>();
        Dims in = net_->tensor(l.inputs[0]).dims;
        fan_in = static_cast<double>((in.c / p.groups) * p.kh() *
                                     p.kw());
        main_weights = count - (p.has_bias ? p.out_channels : 0);
    } else if (l.kind == LayerKind::kFullyConnected) {
        const auto &p = l.as<FcParams>();
        Dims in = net_->tensor(l.inputs[0]).dims;
        fan_in = static_cast<double>(in.c * in.h * in.w);
        main_weights = count - (p.has_bias ? p.out_features : 0);
    }

    double scale = std::sqrt(2.0 / fan_in);
    for (std::int64_t i = 0; i < main_weights; i++)
        blob[static_cast<std::size_t>(i)] =
            static_cast<float>(rng.gaussian(0.0, scale));

    // Bias / auxiliary blobs: small offsets so activations are not
    // symmetric around zero (keeps relu paths alive).
    for (std::int64_t i = main_weights; i < count; i++)
        blob[static_cast<std::size_t>(i)] =
            static_cast<float>(rng.gaussian(0.0, 0.05));

    if (l.kind == LayerKind::kBatchNorm) {
        // Blob layout: mean[c], var[c]; variances must be positive.
        std::int64_t c = count / 2;
        for (std::int64_t i = 0; i < c; i++)
            blob[static_cast<std::size_t>(i)] =
                static_cast<float>(rng.gaussian(0.0, 0.2));
        for (std::int64_t i = c; i < count; i++)
            blob[static_cast<std::size_t>(i)] =
                static_cast<float>(0.5 + rng.uniform() * 0.8);
    }
    return blob;
}

} // namespace edgert::nn
