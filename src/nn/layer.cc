#include "nn/layer.hh"

#include "common/logging.hh"

namespace edgert::nn {

const char *
layerKindName(LayerKind k)
{
    switch (k) {
      case LayerKind::kInput: return "input";
      case LayerKind::kConvolution: return "conv";
      case LayerKind::kDeconvolution: return "deconv";
      case LayerKind::kPooling: return "pool";
      case LayerKind::kFullyConnected: return "fc";
      case LayerKind::kActivation: return "act";
      case LayerKind::kBatchNorm: return "bn";
      case LayerKind::kScale: return "scale";
      case LayerKind::kLRN: return "lrn";
      case LayerKind::kConcat: return "concat";
      case LayerKind::kEltwise: return "eltwise";
      case LayerKind::kSoftmax: return "softmax";
      case LayerKind::kUpsample: return "upsample";
      case LayerKind::kFlatten: return "flatten";
      case LayerKind::kDropout: return "dropout";
      case LayerKind::kRegion: return "region";
      case LayerKind::kDetectionOutput: return "detection";
      case LayerKind::kIdentity: return "identity";
    }
    panic("unknown LayerKind");
}

std::int64_t
Layer::paramCount(std::int64_t in_channels) const
{
    switch (kind) {
      case LayerKind::kConvolution:
      case LayerKind::kDeconvolution: {
        const auto &p = as<ConvParams>();
        std::int64_t w = p.out_channels * (in_channels / p.groups) *
                         p.kh() * p.kw();
        return w + (p.has_bias ? p.out_channels : 0);
      }
      case LayerKind::kFullyConnected: {
        // in_channels here is the flattened input feature count.
        const auto &p = as<FcParams>();
        return p.out_features * in_channels +
               (p.has_bias ? p.out_features : 0);
      }
      case LayerKind::kBatchNorm:
        // Running mean + variance, folded gamma/beta live in kScale.
        return 2 * in_channels;
      case LayerKind::kScale: {
        const auto &p = as<ScaleParams>();
        return in_channels + (p.has_bias ? in_channels : 0);
      }
      case LayerKind::kActivation: {
        const auto &p = as<ActivationParams>();
        return p.mode == ActivationParams::Mode::kPRelu ? in_channels
                                                        : 0;
      }
      default:
        return 0;
    }
}

} // namespace edgert::nn
