#include "nn/serialize.hh"

#include <fstream>

#include "common/binio.hh"
#include "common/logging.hh"

namespace edgert::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4e545245; // "ERTN"
constexpr std::uint32_t kVersion = 2; // v2: rectangular kernels

void
writeParams(BinWriter &w, const Layer &l)
{
    switch (l.kind) {
      case LayerKind::kConvolution:
      case LayerKind::kDeconvolution: {
        const auto &p = l.as<ConvParams>();
        w.i64(p.out_channels);
        w.i64(p.kernel);
        w.i64(p.kernel_w);
        w.i64(p.stride);
        w.i64(p.pad);
        w.i64(p.pad_w);
        w.i64(p.dilation);
        w.i64(p.groups);
        w.u8(p.has_bias);
        break;
      }
      case LayerKind::kPooling: {
        const auto &p = l.as<PoolParams>();
        w.u8(static_cast<std::uint8_t>(p.mode));
        w.i64(p.kernel);
        w.i64(p.stride);
        w.i64(p.pad);
        w.u8(p.global);
        break;
      }
      case LayerKind::kFullyConnected: {
        const auto &p = l.as<FcParams>();
        w.i64(p.out_features);
        w.u8(p.has_bias);
        break;
      }
      case LayerKind::kActivation: {
        const auto &p = l.as<ActivationParams>();
        w.u8(static_cast<std::uint8_t>(p.mode));
        w.f32(p.alpha);
        break;
      }
      case LayerKind::kBatchNorm:
        w.f32(l.as<BatchNormParams>().epsilon);
        break;
      case LayerKind::kScale:
        w.u8(l.as<ScaleParams>().has_bias);
        break;
      case LayerKind::kLRN: {
        const auto &p = l.as<LrnParams>();
        w.i64(p.local_size);
        w.f32(p.alpha);
        w.f32(p.beta);
        w.f32(p.k);
        break;
      }
      case LayerKind::kEltwise:
        w.u8(static_cast<std::uint8_t>(l.as<EltwiseParams>().mode));
        break;
      case LayerKind::kUpsample:
        w.i64(l.as<UpsampleParams>().factor);
        break;
      case LayerKind::kDropout:
        w.f32(l.as<DropoutParams>().ratio);
        break;
      case LayerKind::kRegion: {
        const auto &p = l.as<RegionParams>();
        w.i64(p.num_anchors);
        w.i64(p.num_classes);
        break;
      }
      case LayerKind::kDetectionOutput: {
        const auto &p = l.as<DetectionOutputParams>();
        w.i64(p.num_classes);
        w.f32(p.nms_threshold);
        w.f32(p.confidence_threshold);
        w.i64(p.keep_top_k);
        break;
      }
      default:
        break; // no parameters
    }
}

/** Reject an out-of-range serialized enum value. */
template <typename Enum>
Status
checkEnum(std::uint8_t raw, Enum max, const char *what)
{
    if (raw > static_cast<std::uint8_t>(max))
        return errorStatus(ErrorCode::kDataLoss,
                           "deserializeNetwork: invalid ", what, " ",
                           static_cast<int>(raw));
    return Status();
}

// Untrusted geometry must be bounded before it reaches shape
// arithmetic: an adversarial stride of 0 divides by zero in the
// output-extent formulas, and extents near INT64_MAX overflow
// Dims::volume(). These ceilings are far beyond any real model.
constexpr std::int64_t kMaxExtent = std::int64_t{1} << 20;
constexpr std::int64_t kMaxGeom = std::int64_t{1} << 14;

/** Reject a serialized integer outside [lo, hi]. */
Status
checkRange(std::int64_t v, std::int64_t lo, std::int64_t hi,
           const char *what)
{
    if (v < lo || v > hi)
        return errorStatus(ErrorCode::kDataLoss,
                           "deserializeNetwork: ", what, " ", v,
                           " out of range [", lo, ", ", hi, "]");
    return Status();
}

Status
readLayer(BinReader &r, Network &net)
{
    std::uint8_t kind_raw = r.u8();
    if (Status st =
            checkEnum(kind_raw, LayerKind::kIdentity, "layer kind");
        !st.ok())
        return st;
    auto kind = static_cast<LayerKind>(kind_raw);
    std::string name = r.str();
    std::uint32_t nin = r.count(4);
    std::vector<std::string> inputs;
    for (std::uint32_t i = 0; i < nin; i++)
        inputs.push_back(r.str());
    if (!r.ok())
        return r.status();

    switch (kind) {
      case LayerKind::kInput: {
        Dims d;
        d.n = r.i64();
        d.c = r.i64();
        d.h = r.i64();
        d.w = r.i64();
        for (std::int64_t v : {d.n, d.c, d.h, d.w})
            if (Status st = checkRange(v, 1, kMaxExtent, "input dim");
                !st.ok())
                return st;
        net.addInput(name, d);
        break;
      }
      case LayerKind::kConvolution:
      case LayerKind::kDeconvolution: {
        ConvParams p;
        p.out_channels = r.i64();
        p.kernel = r.i64();
        p.kernel_w = r.i64();
        p.stride = r.i64();
        p.pad = r.i64();
        p.pad_w = r.i64();
        p.dilation = r.i64();
        p.groups = r.i64();
        p.has_bias = r.u8();
        struct
        {
            std::int64_t v, lo, hi;
            const char *what;
        } ranges[] = {
            {p.out_channels, 1, kMaxExtent, "conv out_channels"},
            {p.kernel, 1, kMaxGeom, "conv kernel"},
            {p.kernel_w, 0, kMaxGeom, "conv kernel_w"},
            {p.stride, 1, kMaxGeom, "conv stride"},
            {p.pad, 0, kMaxGeom, "conv pad"},
            {p.pad_w, -1, kMaxGeom, "conv pad_w"},
            {p.dilation, 1, kMaxGeom, "conv dilation"},
            {p.groups, 1, kMaxExtent, "conv groups"},
        };
        for (const auto &c : ranges)
            if (Status st = checkRange(c.v, c.lo, c.hi, c.what);
                !st.ok())
                return st;
        if (kind == LayerKind::kConvolution)
            net.addConvolution(name, inputs.at(0), p);
        else
            net.addDeconvolution(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kPooling: {
        PoolParams p;
        std::uint8_t mode_raw = r.u8();
        if (Status st = checkEnum(mode_raw, PoolParams::Mode::kAvg,
                                  "pooling mode");
            !st.ok())
            return st;
        p.mode = static_cast<PoolParams::Mode>(mode_raw);
        p.kernel = r.i64();
        p.stride = r.i64();
        p.pad = r.i64();
        p.global = r.u8();
        struct
        {
            std::int64_t v, lo, hi;
            const char *what;
        } ranges[] = {
            {p.kernel, 1, kMaxGeom, "pooling kernel"},
            {p.stride, 1, kMaxGeom, "pooling stride"},
            {p.pad, 0, kMaxGeom, "pooling pad"},
        };
        for (const auto &c : ranges)
            if (Status st = checkRange(c.v, c.lo, c.hi, c.what);
                !st.ok())
                return st;
        net.addPooling(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kFullyConnected: {
        FcParams p;
        p.out_features = r.i64();
        p.has_bias = r.u8();
        if (Status st = checkRange(p.out_features, 1, kMaxExtent,
                                   "fc out_features");
            !st.ok())
            return st;
        net.addFullyConnected(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kActivation: {
        ActivationParams p;
        std::uint8_t mode_raw = r.u8();
        if (Status st = checkEnum(mode_raw,
                                  ActivationParams::Mode::kPRelu,
                                  "activation mode");
            !st.ok())
            return st;
        p.mode = static_cast<ActivationParams::Mode>(mode_raw);
        p.alpha = r.f32();
        net.addActivation(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kBatchNorm: {
        BatchNormParams p;
        p.epsilon = r.f32();
        net.addBatchNorm(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kScale: {
        ScaleParams p;
        p.has_bias = r.u8();
        net.addScale(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kLRN: {
        LrnParams p;
        p.local_size = r.i64();
        p.alpha = r.f32();
        p.beta = r.f32();
        p.k = r.f32();
        if (Status st = checkRange(p.local_size, 1, kMaxGeom,
                                   "lrn local_size");
            !st.ok())
            return st;
        net.addLrn(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kConcat:
        net.addConcat(name, inputs);
        break;
      case LayerKind::kEltwise: {
        EltwiseParams p;
        std::uint8_t mode_raw = r.u8();
        if (Status st = checkEnum(mode_raw,
                                  EltwiseParams::Mode::kMax,
                                  "eltwise mode");
            !st.ok())
            return st;
        p.mode = static_cast<EltwiseParams::Mode>(mode_raw);
        net.addEltwise(name, inputs, p);
        break;
      }
      case LayerKind::kSoftmax:
        net.addSoftmax(name, inputs.at(0));
        break;
      case LayerKind::kUpsample: {
        UpsampleParams p;
        p.factor = r.i64();
        if (Status st =
                checkRange(p.factor, 1, kMaxGeom, "upsample factor");
            !st.ok())
            return st;
        net.addUpsample(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kFlatten:
        net.addFlatten(name, inputs.at(0));
        break;
      case LayerKind::kDropout: {
        DropoutParams p;
        p.ratio = r.f32();
        net.addDropout(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kRegion: {
        RegionParams p;
        p.num_anchors = r.i64();
        p.num_classes = r.i64();
        if (Status st = checkRange(p.num_anchors, 1, kMaxGeom,
                                   "region num_anchors");
            !st.ok())
            return st;
        if (Status st = checkRange(p.num_classes, 1, kMaxExtent,
                                   "region num_classes");
            !st.ok())
            return st;
        net.addRegion(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kDetectionOutput: {
        DetectionOutputParams p;
        p.num_classes = r.i64();
        p.nms_threshold = r.f32();
        p.confidence_threshold = r.f32();
        p.keep_top_k = r.i64();
        if (Status st = checkRange(p.num_classes, 1, kMaxExtent,
                                   "detection num_classes");
            !st.ok())
            return st;
        if (Status st = checkRange(p.keep_top_k, -1, kMaxExtent,
                                   "detection keep_top_k");
            !st.ok())
            return st;
        net.addDetectionOutput(name, inputs, p);
        break;
      }
      case LayerKind::kIdentity:
        net.addIdentity(name, inputs.at(0));
        break;
    }
    return Status();
}

} // namespace

std::vector<std::uint8_t>
serializeNetwork(const Network &net)
{
    BinWriter w;
    w.u32(kMagic);
    w.u32(kVersion);
    w.str(net.name());
    w.u32(static_cast<std::uint32_t>(net.layers().size()));
    for (const auto &l : net.layers()) {
        w.u8(static_cast<std::uint8_t>(l.kind));
        w.str(l.name);
        w.u32(static_cast<std::uint32_t>(l.inputs.size()));
        for (const auto &in : l.inputs)
            w.str(in);
        if (l.kind == LayerKind::kInput) {
            const Dims &d = net.tensor(l.name).dims;
            w.i64(d.n);
            w.i64(d.c);
            w.i64(d.h);
            w.i64(d.w);
        } else {
            writeParams(w, l);
        }
    }
    w.u32(static_cast<std::uint32_t>(net.outputs().size()));
    for (const auto &o : net.outputs())
        w.str(o);
    return w.bytes();
}

Result<Network>
deserializeNetwork(const std::vector<std::uint8_t> &bytes)
{
    // Model files are untrusted input. Parse with a fallible reader
    // and convert the graph builder's own rejections (duplicate
    // names, unknown inputs, failed validation — raised as
    // FatalError) into a recoverable Status.
    BinReader r(bytes, BinReader::OnError::kStatus);
    std::uint32_t magic = r.u32();
    std::uint32_t version = r.u32();
    if (!r.ok())
        return errorStatus(ErrorCode::kDataLoss,
                           "deserializeNetwork: stream too short "
                           "for a header (",
                           bytes.size(), " bytes)");
    if (magic != kMagic)
        return errorStatus(ErrorCode::kDataLoss,
                           "deserializeNetwork: bad magic (not a "
                           "network file)");
    if (version != kVersion)
        return errorStatus(ErrorCode::kDataLoss,
                           "deserializeNetwork: unsupported version ",
                           version);
    try {
        // Each layer record is at least kind + name length + input
        // count = 9 bytes.
        Network net(r.str());
        std::uint32_t n_layers = r.count(9);
        for (std::uint32_t i = 0; i < n_layers && r.ok(); i++)
            if (Status st = readLayer(r, net); !st.ok())
                return st;
        std::uint32_t n_out = r.count(4);
        for (std::uint32_t i = 0; i < n_out && r.ok(); i++)
            net.markOutput(r.str());
        if (!r.ok())
            return r.status().context("deserializeNetwork");
        if (!r.atEnd())
            return errorStatus(ErrorCode::kDataLoss,
                               "deserializeNetwork: ", r.remaining(),
                               " trailing bytes after the last "
                               "field");
        net.validate();
        return net;
    } catch (const FatalError &e) {
        return errorStatus(ErrorCode::kDataLoss,
                           "deserializeNetwork: invalid graph: ",
                           e.what());
    } catch (const std::exception &e) {
        return errorStatus(ErrorCode::kDataLoss,
                           "deserializeNetwork: malformed layer: ",
                           e.what());
    }
}

void
saveNetwork(const Network &net, const std::string &path)
{
    auto bytes = serializeNetwork(net);
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("saveNetwork: cannot open '", path, "'");
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

Result<Network>
loadNetwork(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return errorStatus(ErrorCode::kNotFound,
                           "loadNetwork: cannot open '", path, "'");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    auto net = deserializeNetwork(bytes);
    if (!net.ok())
        return net.status().context("loadNetwork: '" + path + "'");
    return net;
}

} // namespace edgert::nn
