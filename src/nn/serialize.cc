#include "nn/serialize.hh"

#include <fstream>

#include "common/binio.hh"
#include "common/logging.hh"

namespace edgert::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4e545245; // "ERTN"
constexpr std::uint32_t kVersion = 2; // v2: rectangular kernels

void
writeParams(BinWriter &w, const Layer &l)
{
    switch (l.kind) {
      case LayerKind::kConvolution:
      case LayerKind::kDeconvolution: {
        const auto &p = l.as<ConvParams>();
        w.i64(p.out_channels);
        w.i64(p.kernel);
        w.i64(p.kernel_w);
        w.i64(p.stride);
        w.i64(p.pad);
        w.i64(p.pad_w);
        w.i64(p.dilation);
        w.i64(p.groups);
        w.u8(p.has_bias);
        break;
      }
      case LayerKind::kPooling: {
        const auto &p = l.as<PoolParams>();
        w.u8(static_cast<std::uint8_t>(p.mode));
        w.i64(p.kernel);
        w.i64(p.stride);
        w.i64(p.pad);
        w.u8(p.global);
        break;
      }
      case LayerKind::kFullyConnected: {
        const auto &p = l.as<FcParams>();
        w.i64(p.out_features);
        w.u8(p.has_bias);
        break;
      }
      case LayerKind::kActivation: {
        const auto &p = l.as<ActivationParams>();
        w.u8(static_cast<std::uint8_t>(p.mode));
        w.f32(p.alpha);
        break;
      }
      case LayerKind::kBatchNorm:
        w.f32(l.as<BatchNormParams>().epsilon);
        break;
      case LayerKind::kScale:
        w.u8(l.as<ScaleParams>().has_bias);
        break;
      case LayerKind::kLRN: {
        const auto &p = l.as<LrnParams>();
        w.i64(p.local_size);
        w.f32(p.alpha);
        w.f32(p.beta);
        w.f32(p.k);
        break;
      }
      case LayerKind::kEltwise:
        w.u8(static_cast<std::uint8_t>(l.as<EltwiseParams>().mode));
        break;
      case LayerKind::kUpsample:
        w.i64(l.as<UpsampleParams>().factor);
        break;
      case LayerKind::kDropout:
        w.f32(l.as<DropoutParams>().ratio);
        break;
      case LayerKind::kRegion: {
        const auto &p = l.as<RegionParams>();
        w.i64(p.num_anchors);
        w.i64(p.num_classes);
        break;
      }
      case LayerKind::kDetectionOutput: {
        const auto &p = l.as<DetectionOutputParams>();
        w.i64(p.num_classes);
        w.f32(p.nms_threshold);
        w.f32(p.confidence_threshold);
        w.i64(p.keep_top_k);
        break;
      }
      default:
        break; // no parameters
    }
}

void
readLayer(BinReader &r, Network &net)
{
    auto kind = static_cast<LayerKind>(r.u8());
    std::string name = r.str();
    std::uint32_t nin = r.u32();
    std::vector<std::string> inputs;
    for (std::uint32_t i = 0; i < nin; i++)
        inputs.push_back(r.str());

    switch (kind) {
      case LayerKind::kInput: {
        Dims d;
        d.n = r.i64();
        d.c = r.i64();
        d.h = r.i64();
        d.w = r.i64();
        net.addInput(name, d);
        break;
      }
      case LayerKind::kConvolution:
      case LayerKind::kDeconvolution: {
        ConvParams p;
        p.out_channels = r.i64();
        p.kernel = r.i64();
        p.kernel_w = r.i64();
        p.stride = r.i64();
        p.pad = r.i64();
        p.pad_w = r.i64();
        p.dilation = r.i64();
        p.groups = r.i64();
        p.has_bias = r.u8();
        if (kind == LayerKind::kConvolution)
            net.addConvolution(name, inputs.at(0), p);
        else
            net.addDeconvolution(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kPooling: {
        PoolParams p;
        p.mode = static_cast<PoolParams::Mode>(r.u8());
        p.kernel = r.i64();
        p.stride = r.i64();
        p.pad = r.i64();
        p.global = r.u8();
        net.addPooling(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kFullyConnected: {
        FcParams p;
        p.out_features = r.i64();
        p.has_bias = r.u8();
        net.addFullyConnected(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kActivation: {
        ActivationParams p;
        p.mode = static_cast<ActivationParams::Mode>(r.u8());
        p.alpha = r.f32();
        net.addActivation(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kBatchNorm: {
        BatchNormParams p;
        p.epsilon = r.f32();
        net.addBatchNorm(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kScale: {
        ScaleParams p;
        p.has_bias = r.u8();
        net.addScale(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kLRN: {
        LrnParams p;
        p.local_size = r.i64();
        p.alpha = r.f32();
        p.beta = r.f32();
        p.k = r.f32();
        net.addLrn(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kConcat:
        net.addConcat(name, inputs);
        break;
      case LayerKind::kEltwise: {
        EltwiseParams p;
        p.mode = static_cast<EltwiseParams::Mode>(r.u8());
        net.addEltwise(name, inputs, p);
        break;
      }
      case LayerKind::kSoftmax:
        net.addSoftmax(name, inputs.at(0));
        break;
      case LayerKind::kUpsample: {
        UpsampleParams p;
        p.factor = r.i64();
        net.addUpsample(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kFlatten:
        net.addFlatten(name, inputs.at(0));
        break;
      case LayerKind::kDropout: {
        DropoutParams p;
        p.ratio = r.f32();
        net.addDropout(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kRegion: {
        RegionParams p;
        p.num_anchors = r.i64();
        p.num_classes = r.i64();
        net.addRegion(name, inputs.at(0), p);
        break;
      }
      case LayerKind::kDetectionOutput: {
        DetectionOutputParams p;
        p.num_classes = r.i64();
        p.nms_threshold = r.f32();
        p.confidence_threshold = r.f32();
        p.keep_top_k = r.i64();
        net.addDetectionOutput(name, inputs, p);
        break;
      }
      case LayerKind::kIdentity:
        net.addIdentity(name, inputs.at(0));
        break;
    }
}

} // namespace

std::vector<std::uint8_t>
serializeNetwork(const Network &net)
{
    BinWriter w;
    w.u32(kMagic);
    w.u32(kVersion);
    w.str(net.name());
    w.u32(static_cast<std::uint32_t>(net.layers().size()));
    for (const auto &l : net.layers()) {
        w.u8(static_cast<std::uint8_t>(l.kind));
        w.str(l.name);
        w.u32(static_cast<std::uint32_t>(l.inputs.size()));
        for (const auto &in : l.inputs)
            w.str(in);
        if (l.kind == LayerKind::kInput) {
            const Dims &d = net.tensor(l.name).dims;
            w.i64(d.n);
            w.i64(d.c);
            w.i64(d.h);
            w.i64(d.w);
        } else {
            writeParams(w, l);
        }
    }
    w.u32(static_cast<std::uint32_t>(net.outputs().size()));
    for (const auto &o : net.outputs())
        w.str(o);
    return w.bytes();
}

Network
deserializeNetwork(const std::vector<std::uint8_t> &bytes)
{
    BinReader r(bytes);
    if (r.u32() != kMagic)
        fatal("deserializeNetwork: bad magic");
    if (r.u32() != kVersion)
        fatal("deserializeNetwork: unsupported version");
    Network net(r.str());
    std::uint32_t n_layers = r.u32();
    for (std::uint32_t i = 0; i < n_layers; i++)
        readLayer(r, net);
    std::uint32_t n_out = r.u32();
    for (std::uint32_t i = 0; i < n_out; i++)
        net.markOutput(r.str());
    net.validate();
    return net;
}

void
saveNetwork(const Network &net, const std::string &path)
{
    auto bytes = serializeNetwork(net);
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("saveNetwork: cannot open '", path, "'");
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

Network
loadNetwork(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        fatal("loadNetwork: cannot open '", path, "'");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(f)),
        std::istreambuf_iterator<char>());
    return deserializeNetwork(bytes);
}

} // namespace edgert::nn
