#include "nn/executor.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/half.hh"
#include "common/logging.hh"

namespace edgert::nn {

const char *
precisionName(Precision p)
{
    switch (p) {
      case Precision::kFp32: return "fp32";
      case Precision::kFp16: return "fp16";
      case Precision::kInt8: return "int8";
      case Precision::kMixed: return "mixed";
    }
    panic("unknown Precision");
}

Precision
parsePrecisionName(const std::string &s)
{
    if (s == "fp32")
        return Precision::kFp32;
    if (s == "fp16")
        return Precision::kFp16;
    if (s == "int8")
        return Precision::kInt8;
    if (s == "mixed")
        return Precision::kMixed;
    fatal("unknown precision '", s,
          "' (expected fp32|fp16|int8|mixed)");
}

namespace {

/**
 * Multiply-accumulate helper implementing the precision semantics
 * described in the header. One instance accumulates one output
 * element's reduction.
 */
class Accum
{
  public:
    Accum(Precision prec, std::int64_t tile)
        : prec_(prec), tile_(tile)
    {}

    void
    add(float a, float b)
    {
        if (prec_ == Precision::kFp16) {
            float p = roundToHalf(a) * roundToHalf(b);
            tile_sum_ += p;
            if (tile_ > 0 && ++in_tile_ == tile_)
                flushTile();
        } else {
            tile_sum_ += a * b;
        }
    }

    float
    finish(float bias)
    {
        if (prec_ == Precision::kFp16) {
            flushTile();
            total_ = roundToHalf(total_ + roundToHalf(bias));
            return total_;
        }
        return static_cast<float>(tile_sum_) + bias;
    }

  private:
    void
    flushTile()
    {
        if (in_tile_ == 0 && tile_ > 0)
            return;
        // Tile partial rounded to fp16 and combined in fp16.
        total_ = roundToHalf(total_ + roundToHalf(tile_sum_));
        tile_sum_ = 0.0f;
        in_tile_ = 0;
    }

    Precision prec_;
    std::int64_t tile_;
    std::int64_t in_tile_ = 0;
    float tile_sum_ = 0.0f;
    float total_ = 0.0f;
};

/** Symmetric per-tensor int8 quantization scale (max-abs / 127). */
float
int8Scale(const float *data, std::int64_t n)
{
    float max_abs = 0.0f;
    for (std::int64_t i = 0; i < n; i++)
        max_abs = std::max(max_abs, std::fabs(data[i]));
    return max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
}

std::vector<std::int8_t>
quantize(const float *data, std::int64_t n, float scale)
{
    std::vector<std::int8_t> q(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; i++) {
        float v = std::round(data[i] / scale);
        v = std::clamp(v, -127.0f, 127.0f);
        q[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(v);
    }
    return q;
}

} // namespace

Executor::Executor(const Network &net, const WeightsStore &weights,
                   const ExecOptions &opts)
    : net_(&net), weights_(&weights), opts_(opts)
{
    if (opts_.precision == Precision::kMixed)
        fatal("Executor: kMixed is an engine-level label; run each "
              "step at its concrete precision instead");
    net.validate();
}

float
Executor::castElem(float v) const
{
    return opts_.precision == Precision::kFp16 ? roundToHalf(v) : v;
}

std::unordered_map<std::string, Tensor>
Executor::run(const std::unordered_map<std::string, Tensor> &inputs) const
{
    std::unordered_map<std::string, Tensor> values;
    for (const auto &l : net_->layers()) {
        if (l.kind == LayerKind::kInput) {
            auto it = inputs.find(l.name);
            if (it == inputs.end())
                fatal("executor: missing input tensor '", l.name, "'");
            if (!(it->second.dims() == net_->tensor(l.name).dims))
                fatal("executor: input '", l.name, "' dims ",
                      it->second.dims().toString(), " != declared ",
                      net_->tensor(l.name).dims.toString());
            values[l.name] = it->second;
            continue;
        }
        std::vector<const Tensor *> ins;
        ins.reserve(l.inputs.size());
        for (const auto &in : l.inputs)
            ins.push_back(&values.at(in));
        values[l.output] = execLayer(l, ins);
    }

    std::unordered_map<std::string, Tensor> outs;
    for (const auto &o : net_->outputs())
        outs[o] = values.at(o);
    return outs;
}

Tensor
Executor::runSimple(const Tensor &input) const
{
    if (net_->inputs().size() != 1 || net_->outputs().size() != 1)
        fatal("runSimple requires single-input single-output network");
    std::unordered_map<std::string, Tensor> ins;
    ins[net_->inputs()[0]] = input;
    auto outs = run(ins);
    return outs.at(net_->outputs()[0]);
}

Tensor
Executor::execLayer(const Layer &l,
                    const std::vector<const Tensor *> &ins) const
{
    Dims out_dims = net_->tensor(l.output).dims;
    Tensor out(out_dims);
    const Tensor &x = *ins[0];

    switch (l.kind) {
      case LayerKind::kConvolution: {
        const auto &p = l.as<ConvParams>();
        auto blob = weights_->materialize(l);
        Dims in = x.dims();
        std::int64_t icg = in.c / p.groups; // input channels per group
        std::int64_t ocg = p.out_channels / p.groups;
        std::int64_t kh = p.kh(), kw = p.kw();
        std::int64_t ksz = icg * kh * kw;
        const float *bias =
            p.has_bias ? blob.data() + p.out_channels * ksz : nullptr;

        if (opts_.precision == Precision::kInt8) {
            float xs = int8Scale(x.data(), x.volume());
            float ws = int8Scale(blob.data(), p.out_channels * ksz);
            auto xq = quantize(x.data(), x.volume(), xs);
            auto wq = quantize(blob.data(), p.out_channels * ksz, ws);
            for (std::int64_t n = 0; n < out_dims.n; n++)
            for (std::int64_t oc = 0; oc < out_dims.c; oc++) {
                std::int64_t g = oc / ocg;
                for (std::int64_t oh = 0; oh < out_dims.h; oh++)
                for (std::int64_t ow = 0; ow < out_dims.w; ow++) {
                    std::int64_t acc = 0;
                    for (std::int64_t ic = 0; ic < icg; ic++)
                    for (std::int64_t fh = 0; fh < kh; fh++)
                    for (std::int64_t fw = 0; fw < kw; fw++) {
                        std::int64_t ih = oh * p.stride - p.ph() +
                                          fh * p.dilation;
                        std::int64_t iw = ow * p.stride - p.pw() +
                                          fw * p.dilation;
                        if (ih < 0 || ih >= in.h || iw < 0 ||
                            iw >= in.w)
                            continue;
                        std::int64_t xi =
                            ((n * in.c + g * icg + ic) * in.h + ih) *
                                in.w + iw;
                        std::int64_t wi =
                            (oc * icg + ic) * kh * kw + fh * kw + fw;
                        acc += static_cast<std::int64_t>(xq[xi]) *
                               wq[wi];
                    }
                    float v = static_cast<float>(acc) * xs * ws +
                              (bias ? bias[oc] : 0.0f);
                    out.at(n, oc, oh, ow) = v;
                }
            }
        } else {
            for (std::int64_t n = 0; n < out_dims.n; n++)
            for (std::int64_t oc = 0; oc < out_dims.c; oc++) {
                std::int64_t g = oc / ocg;
                for (std::int64_t oh = 0; oh < out_dims.h; oh++)
                for (std::int64_t ow = 0; ow < out_dims.w; ow++) {
                    Accum acc(opts_.precision, opts_.accum_tile);
                    for (std::int64_t ic = 0; ic < icg; ic++)
                    for (std::int64_t fh = 0; fh < kh; fh++)
                    for (std::int64_t fw = 0; fw < kw; fw++) {
                        std::int64_t ih = oh * p.stride - p.ph() +
                                          fh * p.dilation;
                        std::int64_t iw = ow * p.stride - p.pw() +
                                          fw * p.dilation;
                        if (ih < 0 || ih >= in.h || iw < 0 ||
                            iw >= in.w)
                            continue;
                        float xv = x.at(n, g * icg + ic, ih, iw);
                        float wv = blob[static_cast<std::size_t>(
                            (oc * icg + ic) * kh * kw + fh * kw +
                            fw)];
                        acc.add(xv, wv);
                    }
                    out.at(n, oc, oh, ow) =
                        acc.finish(bias ? bias[oc] : 0.0f);
                }
            }
        }
        break;
      }

      case LayerKind::kDeconvolution: {
        const auto &p = l.as<ConvParams>();
        auto blob = weights_->materialize(l);
        Dims in = x.dims();
        std::int64_t kh = p.kh(), kw = p.kw();
        std::int64_t ksz = in.c * kh * kw;
        const float *bias =
            p.has_bias ? blob.data() + p.out_channels * ksz : nullptr;
        // Scatter formulation; fp32 accumulation (deconv appears only
        // in the FCN head where precision subtleties do not matter).
        for (std::int64_t n = 0; n < in.n; n++)
        for (std::int64_t ic = 0; ic < in.c; ic++)
        for (std::int64_t ih = 0; ih < in.h; ih++)
        for (std::int64_t iw = 0; iw < in.w; iw++) {
            float xv = x.at(n, ic, ih, iw);
            for (std::int64_t oc = 0; oc < p.out_channels; oc++)
            for (std::int64_t fh = 0; fh < kh; fh++)
            for (std::int64_t fw = 0; fw < kw; fw++) {
                std::int64_t oh = ih * p.stride - p.ph() + fh;
                std::int64_t ow = iw * p.stride - p.pw() + fw;
                if (oh < 0 || oh >= out_dims.h || ow < 0 ||
                    ow >= out_dims.w)
                    continue;
                float wv = blob[static_cast<std::size_t>(
                    (oc * in.c + ic) * kh * kw + fh * kw + fw)];
                out.at(n, oc, oh, ow) += xv * wv;
            }
        }
        if (bias) {
            for (std::int64_t n = 0; n < out_dims.n; n++)
            for (std::int64_t oc = 0; oc < out_dims.c; oc++)
            for (std::int64_t oh = 0; oh < out_dims.h; oh++)
            for (std::int64_t ow = 0; ow < out_dims.w; ow++)
                out.at(n, oc, oh, ow) =
                    castElem(out.at(n, oc, oh, ow) + bias[oc]);
        }
        break;
      }

      case LayerKind::kPooling: {
        const auto &p = l.as<PoolParams>();
        Dims in = x.dims();
        std::int64_t k = p.global ? std::max(in.h, in.w) : p.kernel;
        std::int64_t s = p.global ? 1 : p.stride;
        std::int64_t pad = p.global ? 0 : p.pad;
        for (std::int64_t n = 0; n < out_dims.n; n++)
        for (std::int64_t c = 0; c < out_dims.c; c++)
        for (std::int64_t oh = 0; oh < out_dims.h; oh++)
        for (std::int64_t ow = 0; ow < out_dims.w; ow++) {
            std::int64_t h0 = p.global ? 0 : oh * s - pad;
            std::int64_t w0 = p.global ? 0 : ow * s - pad;
            std::int64_t h1 = p.global ? in.h : h0 + k;
            std::int64_t w1 = p.global ? in.w : w0 + k;
            float acc = p.mode == PoolParams::Mode::kMax
                            ? -std::numeric_limits<float>::infinity()
                            : 0.0f;
            std::int64_t cnt = 0;
            for (std::int64_t ih = std::max<std::int64_t>(0, h0);
                 ih < std::min(in.h, h1); ih++)
            for (std::int64_t iw = std::max<std::int64_t>(0, w0);
                 iw < std::min(in.w, w1); iw++) {
                float v = x.at(n, c, ih, iw);
                if (p.mode == PoolParams::Mode::kMax)
                    acc = std::max(acc, v);
                else
                    acc += v;
                cnt++;
            }
            if (p.mode == PoolParams::Mode::kAvg && cnt > 0)
                acc /= static_cast<float>(cnt);
            out.at(n, c, oh, ow) = castElem(acc);
        }
        break;
      }

      case LayerKind::kFullyConnected: {
        const auto &p = l.as<FcParams>();
        auto blob = weights_->materialize(l);
        Dims in = x.dims();
        std::int64_t feats = in.c * in.h * in.w;
        const float *bias =
            p.has_bias ? blob.data() + p.out_features * feats : nullptr;
        if (opts_.precision == Precision::kInt8) {
            float xs = int8Scale(x.data(), x.volume());
            float ws = int8Scale(blob.data(), p.out_features * feats);
            auto xq = quantize(x.data(), x.volume(), xs);
            auto wq = quantize(blob.data(), p.out_features * feats, ws);
            for (std::int64_t n = 0; n < in.n; n++)
            for (std::int64_t o = 0; o < p.out_features; o++) {
                std::int64_t acc = 0;
                for (std::int64_t f = 0; f < feats; f++)
                    acc += static_cast<std::int64_t>(
                               xq[n * feats + f]) *
                           wq[o * feats + f];
                out.at(n, o, 0, 0) = static_cast<float>(acc) * xs * ws +
                                     (bias ? bias[o] : 0.0f);
            }
        } else {
            for (std::int64_t n = 0; n < in.n; n++)
            for (std::int64_t o = 0; o < p.out_features; o++) {
                Accum acc(opts_.precision, opts_.accum_tile);
                for (std::int64_t f = 0; f < feats; f++)
                    acc.add(x[n * feats + f], blob[static_cast<
                            std::size_t>(o * feats + f)]);
                out.at(n, o, 0, 0) = acc.finish(bias ? bias[o] : 0.0f);
            }
        }
        break;
      }

      case LayerKind::kActivation: {
        const auto &p = l.as<ActivationParams>();
        std::vector<float> prelu;
        if (p.mode == ActivationParams::Mode::kPRelu)
            prelu = weights_->materialize(l);
        Dims in = x.dims();
        std::int64_t plane = in.h * in.w;
        for (std::int64_t i = 0; i < x.volume(); i++) {
            float v = x[i];
            switch (p.mode) {
              case ActivationParams::Mode::kRelu:
                v = std::max(0.0f, v);
                break;
              case ActivationParams::Mode::kLeakyRelu:
                v = v > 0.0f ? v : p.alpha * v;
                break;
              case ActivationParams::Mode::kSigmoid:
                v = 1.0f / (1.0f + std::exp(-v));
                break;
              case ActivationParams::Mode::kTanh:
                v = std::tanh(v);
                break;
              case ActivationParams::Mode::kPRelu: {
                std::int64_t c = (i / plane) % in.c;
                float a = prelu[static_cast<std::size_t>(c)];
                v = v > 0.0f ? v : a * v;
                break;
              }
            }
            out[i] = castElem(v);
        }
        break;
      }

      case LayerKind::kBatchNorm: {
        const auto &p = l.as<BatchNormParams>();
        auto blob = weights_->materialize(l);
        Dims in = x.dims();
        std::int64_t c_count = in.c;
        const float *mean = blob.data();
        const float *var = blob.data() + c_count;
        for (std::int64_t n = 0; n < in.n; n++)
        for (std::int64_t c = 0; c < in.c; c++) {
            float inv = 1.0f / std::sqrt(var[c] + p.epsilon);
            for (std::int64_t h = 0; h < in.h; h++)
            for (std::int64_t w = 0; w < in.w; w++)
                out.at(n, c, h, w) =
                    castElem((x.at(n, c, h, w) - mean[c]) * inv);
        }
        break;
      }

      case LayerKind::kScale: {
        const auto &p = l.as<ScaleParams>();
        auto blob = weights_->materialize(l);
        Dims in = x.dims();
        const float *gamma = blob.data();
        const float *beta = p.has_bias ? blob.data() + in.c : nullptr;
        for (std::int64_t n = 0; n < in.n; n++)
        for (std::int64_t c = 0; c < in.c; c++)
        for (std::int64_t h = 0; h < in.h; h++)
        for (std::int64_t w = 0; w < in.w; w++)
            out.at(n, c, h, w) = castElem(
                x.at(n, c, h, w) * gamma[c] + (beta ? beta[c] : 0.0f));
        break;
      }

      case LayerKind::kLRN: {
        const auto &p = l.as<LrnParams>();
        Dims in = x.dims();
        std::int64_t half = p.local_size / 2;
        for (std::int64_t n = 0; n < in.n; n++)
        for (std::int64_t c = 0; c < in.c; c++)
        for (std::int64_t h = 0; h < in.h; h++)
        for (std::int64_t w = 0; w < in.w; w++) {
            float sum = 0.0f;
            for (std::int64_t j = std::max<std::int64_t>(0, c - half);
                 j <= std::min(in.c - 1, c + half); j++) {
                float v = x.at(n, j, h, w);
                sum += v * v;
            }
            float denom = std::pow(
                p.k + p.alpha * sum /
                          static_cast<float>(p.local_size),
                p.beta);
            out.at(n, c, h, w) = castElem(x.at(n, c, h, w) / denom);
        }
        break;
      }

      case LayerKind::kConcat: {
        std::int64_t c_off = 0;
        for (const Tensor *t : ins) {
            Dims d = t->dims();
            for (std::int64_t n = 0; n < d.n; n++)
            for (std::int64_t c = 0; c < d.c; c++)
            for (std::int64_t h = 0; h < d.h; h++)
            for (std::int64_t w = 0; w < d.w; w++)
                out.at(n, c_off + c, h, w) = t->at(n, c, h, w);
            c_off += d.c;
        }
        break;
      }

      case LayerKind::kEltwise: {
        const auto &p = l.as<EltwiseParams>();
        for (std::int64_t i = 0; i < out.volume(); i++) {
            float acc = (*ins[0])[i];
            for (std::size_t k = 1; k < ins.size(); k++) {
                float v = (*ins[k])[i];
                switch (p.mode) {
                  case EltwiseParams::Mode::kSum: acc += v; break;
                  case EltwiseParams::Mode::kProd: acc *= v; break;
                  case EltwiseParams::Mode::kMax:
                    acc = std::max(acc, v);
                    break;
                }
            }
            out[i] = castElem(acc);
        }
        break;
      }

      case LayerKind::kSoftmax: {
        Dims in = x.dims();
        for (std::int64_t n = 0; n < in.n; n++)
        for (std::int64_t h = 0; h < in.h; h++)
        for (std::int64_t w = 0; w < in.w; w++) {
            float mx = -std::numeric_limits<float>::infinity();
            for (std::int64_t c = 0; c < in.c; c++)
                mx = std::max(mx, x.at(n, c, h, w));
            float sum = 0.0f;
            for (std::int64_t c = 0; c < in.c; c++)
                sum += std::exp(x.at(n, c, h, w) - mx);
            for (std::int64_t c = 0; c < in.c; c++)
                out.at(n, c, h, w) = castElem(
                    std::exp(x.at(n, c, h, w) - mx) / sum);
        }
        break;
      }

      case LayerKind::kUpsample: {
        const auto &p = l.as<UpsampleParams>();
        Dims in = x.dims();
        for (std::int64_t n = 0; n < out_dims.n; n++)
        for (std::int64_t c = 0; c < out_dims.c; c++)
        for (std::int64_t h = 0; h < out_dims.h; h++)
        for (std::int64_t w = 0; w < out_dims.w; w++)
            out.at(n, c, h, w) =
                x.at(n, c, h / p.factor, w / p.factor);
        (void)in;
        break;
      }

      case LayerKind::kFlatten:
      case LayerKind::kDropout:
      case LayerKind::kIdentity: {
        std::copy(x.storage().begin(), x.storage().end(),
                  out.storage().begin());
        break;
      }

      case LayerKind::kRegion: {
        const auto &p = l.as<RegionParams>();
        Dims in = x.dims();
        std::int64_t stride = 5 + p.num_classes;
        for (std::int64_t n = 0; n < in.n; n++)
        for (std::int64_t c = 0; c < in.c; c++) {
            std::int64_t within = c % stride;
            // tx, ty, obj and class scores pass through a logistic;
            // tw, th (indices 2, 3) pass through exp.
            bool is_exp = within == 2 || within == 3;
            for (std::int64_t h = 0; h < in.h; h++)
            for (std::int64_t w = 0; w < in.w; w++) {
                float v = x.at(n, c, h, w);
                v = is_exp ? std::exp(std::min(v, 8.0f))
                           : 1.0f / (1.0f + std::exp(-v));
                out.at(n, c, h, w) = castElem(v);
            }
        }
        break;
      }

      case LayerKind::kDetectionOutput: {
        const auto &p = l.as<DetectionOutputParams>();
        // Interpret the first input as a confidence volume; emit the
        // keep_top_k highest-scoring cells as [img, cls, score,
        // x1, y1, x2, y2] rows with boxes centred on the cell.
        Dims in = x.dims();
        struct Cand { float score; std::int64_t c, h, w; };
        for (std::int64_t n = 0; n < in.n; n++) {
            std::vector<Cand> cands;
            for (std::int64_t c = 0; c < in.c; c++)
            for (std::int64_t h = 0; h < in.h; h++)
            for (std::int64_t w = 0; w < in.w; w++) {
                float s = x.at(n, c, h, w);
                if (s > p.confidence_threshold)
                    cands.push_back({s, c, h, w});
            }
            std::sort(cands.begin(), cands.end(),
                      [](const Cand &a, const Cand &b) {
                          if (a.score != b.score)
                              return a.score > b.score;
                          return std::tie(a.c, a.h, a.w) <
                                 std::tie(b.c, b.h, b.w);
                      });
            std::int64_t k = std::min<std::int64_t>(
                p.keep_top_k, static_cast<std::int64_t>(cands.size()));
            for (std::int64_t i = 0; i < k; i++) {
                const Cand &cd = cands[static_cast<std::size_t>(i)];
                float cx = (static_cast<float>(cd.w) + 0.5f) /
                           static_cast<float>(in.w);
                float cy = (static_cast<float>(cd.h) + 0.5f) /
                           static_cast<float>(in.h);
                out.at(n, i, 0, 0) = static_cast<float>(n);
                out.at(n, i, 1, 0) = static_cast<float>(
                    cd.c % p.num_classes);
                out.at(n, i, 2, 0) = cd.score;
                out.at(n, i, 3, 0) = cx - 0.05f;
                out.at(n, i, 4, 0) = cy - 0.05f;
                out.at(n, i, 5, 0) = cx + 0.05f;
                out.at(n, i, 6, 0) = cy + 0.05f;
            }
        }
        break;
      }

      case LayerKind::kInput:
        panic("input layer reached execLayer");
    }

    return out;
}

} // namespace edgert::nn
