#ifndef EDGERT_NN_ANALYSIS_HH
#define EDGERT_NN_ANALYSIS_HH

/**
 * @file
 * Static cost analysis of layers: FLOP counts and activation /
 * weight traffic. These feed the GPU kernel cost models.
 */

#include <cstdint>

#include "nn/network.hh"

namespace edgert::nn {

/** Multiply-accumulate-based FLOP count of one layer (2*MACs). */
std::int64_t layerFlops(const Network &net, const Layer &l);

/** Bytes of input activations read by a layer (element size given). */
std::int64_t layerInputBytes(const Network &net, const Layer &l,
                             std::int64_t elem_size);

/** Bytes of output activations written by a layer. */
std::int64_t layerOutputBytes(const Network &net, const Layer &l,
                              std::int64_t elem_size);

/** Bytes of weights read by a layer. */
std::int64_t layerWeightBytes(const Network &net, const Layer &l,
                              std::int64_t elem_size);

/** Total network FLOPs for one forward pass. */
std::int64_t networkFlops(const Network &net);

} // namespace edgert::nn

#endif // EDGERT_NN_ANALYSIS_HH
