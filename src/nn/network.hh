#ifndef EDGERT_NN_NETWORK_HH
#define EDGERT_NN_NETWORK_HH

/**
 * @file
 * The network definition API: a DAG of layers over named tensors.
 *
 * Networks are built front-to-back; every add*() call performs shape
 * inference immediately and registers the produced tensor, so an
 * invalid graph fails fast at construction time. This mirrors the
 * TensorRT INetworkDefinition surface the paper's workflows drive.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/layer.hh"
#include "nn/tensor.hh"

namespace edgert::nn {

/**
 * A directed acyclic graph of layers, stored in topological order
 * (construction order is required to be topological).
 */
class Network
{
  public:
    /** Create an empty network. @param name Model name ("resnet18"). */
    explicit Network(std::string name);

    const std::string &name() const { return name_; }

    /** @name Builder API
     *  Each method appends a layer, infers its output shape, and
     *  returns the produced tensor's name (defaults to layer name).
     *  @{
     */
    std::string addInput(const std::string &name, const Dims &dims);
    std::string addConvolution(const std::string &name,
                               const std::string &input,
                               const ConvParams &p);
    std::string addDeconvolution(const std::string &name,
                                 const std::string &input,
                                 const ConvParams &p);
    std::string addPooling(const std::string &name,
                           const std::string &input,
                           const PoolParams &p);
    std::string addFullyConnected(const std::string &name,
                                  const std::string &input,
                                  const FcParams &p);
    std::string addActivation(const std::string &name,
                              const std::string &input,
                              const ActivationParams &p);
    std::string addBatchNorm(const std::string &name,
                             const std::string &input,
                             const BatchNormParams &p = {});
    std::string addScale(const std::string &name,
                         const std::string &input,
                         const ScaleParams &p = {});
    std::string addLrn(const std::string &name, const std::string &input,
                       const LrnParams &p);
    std::string addConcat(const std::string &name,
                          const std::vector<std::string> &inputs);
    std::string addEltwise(const std::string &name,
                           const std::vector<std::string> &inputs,
                           const EltwiseParams &p);
    std::string addSoftmax(const std::string &name,
                           const std::string &input);
    std::string addUpsample(const std::string &name,
                            const std::string &input,
                            const UpsampleParams &p);
    std::string addFlatten(const std::string &name,
                           const std::string &input);
    std::string addDropout(const std::string &name,
                           const std::string &input,
                           const DropoutParams &p = {});
    std::string addRegion(const std::string &name,
                          const std::string &input,
                          const RegionParams &p);
    std::string addDetectionOutput(const std::string &name,
                                   const std::vector<std::string> &inputs,
                                   const DetectionOutputParams &p);
    std::string addIdentity(const std::string &name,
                            const std::string &input);
    /** @} */

    /** Mark a tensor as a network output. */
    void markOutput(const std::string &tensor);

    /** All layers in topological order (including kInput nodes). */
    const std::vector<Layer> &layers() const { return layers_; }

    /** Layer lookup by id; panics when out of range. */
    const Layer &layer(std::int32_t id) const;

    /** True when a tensor of this name exists. */
    bool hasTensor(const std::string &name) const;

    /** Tensor metadata lookup; fatal when unknown. */
    const TensorDesc &tensor(const std::string &name) const;

    /** Id of the layer producing a tensor, or -1 for none. */
    std::int32_t producerOf(const std::string &tensor) const;

    /** Ids of layers consuming a tensor. */
    std::vector<std::int32_t>
    consumersOf(const std::string &tensor) const;

    const std::vector<std::string> &inputs() const { return inputs_; }
    const std::vector<std::string> &outputs() const { return outputs_; }

    /** @name Model statistics
     *  @{
     */
    /** Trainable parameters of one layer (shape-aware). */
    std::int64_t layerParamCount(const Layer &l) const;

    /** Total trainable parameters. */
    std::int64_t paramCount() const;

    /** Number of (de)convolution layers. */
    std::int64_t convCount() const;

    /** Number of max-pooling layers. */
    std::int64_t maxPoolCount() const;

    /**
     * Serialized FP32 model size in bytes (weights + per-layer
     * metadata), matching the "un-optimized model size" column of
     * the paper's Table II.
     */
    std::int64_t modelSizeBytes() const;
    /** @} */

    /**
     * Validate graph invariants (outputs marked, every tensor
     * produced before use, no dangling inputs). Fatal on violation.
     */
    void validate() const;

  private:
    std::string appendLayer(LayerKind kind, const std::string &name,
                            LayerParams params,
                            std::vector<std::string> inputs,
                            const Dims &out_dims);

    Dims inputDims(const std::string &tensor) const;

    std::string name_;
    std::vector<Layer> layers_;
    std::unordered_map<std::string, TensorDesc> tensors_;
    std::unordered_map<std::string, std::int32_t> producer_;
    std::vector<std::string> inputs_;
    std::vector<std::string> outputs_;
};

} // namespace edgert::nn

#endif // EDGERT_NN_NETWORK_HH
