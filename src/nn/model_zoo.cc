#include "nn/model_zoo.hh"

#include <functional>
#include <unordered_map>

#include "common/logging.hh"

namespace edgert::nn {

const char *
visionTaskName(VisionTask t)
{
    switch (t) {
      case VisionTask::kClassification: return "classification";
      case VisionTask::kDetection: return "detection";
      case VisionTask::kSegmentation: return "segmentation";
    }
    panic("unknown VisionTask");
}

namespace {

/**
 * Thin builder wrapper with automatic unique layer naming and the
 * composite blocks (conv+relu, conv+bn+scale+relu, inception
 * modules) the zoo models are assembled from.
 */
class NetBuilder
{
  public:
    explicit NetBuilder(const std::string &name) : net(name) {}

    Network net;

    std::string
    uniq(const std::string &base)
    {
        return base + "_" + std::to_string(ctr_++);
    }

    std::string
    conv(const std::string &in, std::int64_t oc, std::int64_t k,
         std::int64_t s = 1, std::int64_t pad = 0,
         std::int64_t groups = 1)
    {
        ConvParams p;
        p.out_channels = oc;
        p.kernel = k;
        p.stride = s;
        p.pad = pad;
        p.groups = groups;
        return net.addConvolution(uniq("conv"), in, p);
    }

    std::string
    relu(const std::string &in)
    {
        return net.addActivation(uniq("relu"), in, {});
    }

    std::string
    convRelu(const std::string &in, std::int64_t oc, std::int64_t k,
             std::int64_t s = 1, std::int64_t pad = 0,
             std::int64_t groups = 1)
    {
        return relu(conv(in, oc, k, s, pad, groups));
    }

    /** Rectangular (factorized) stride-1 convolution + relu. */
    std::string
    convRectRelu(const std::string &in, std::int64_t oc,
                 std::int64_t kh, std::int64_t kw)
    {
        ConvParams p;
        p.out_channels = oc;
        p.kernel = kh;
        p.kernel_w = kw;
        p.pad = kh / 2;
        p.pad_w = kw / 2;
        return relu(net.addConvolution(uniq("conv"), in, p));
    }

    std::string
    convBnRelu(const std::string &in, std::int64_t oc, std::int64_t k,
               std::int64_t s = 1, std::int64_t pad = 0,
               std::int64_t groups = 1)
    {
        auto c = conv(in, oc, k, s, pad, groups);
        auto b = net.addBatchNorm(uniq("bn"), c);
        auto sc = net.addScale(uniq("scale"), b);
        return relu(sc);
    }

    std::string
    maxPool(const std::string &in, std::int64_t k, std::int64_t s,
            std::int64_t pad = 0)
    {
        PoolParams p;
        p.mode = PoolParams::Mode::kMax;
        p.kernel = k;
        p.stride = s;
        p.pad = pad;
        return net.addPooling(uniq("maxpool"), in, p);
    }

    std::string
    avgPool(const std::string &in, std::int64_t k, std::int64_t s,
            std::int64_t pad = 0)
    {
        PoolParams p;
        p.mode = PoolParams::Mode::kAvg;
        p.kernel = k;
        p.stride = s;
        p.pad = pad;
        return net.addPooling(uniq("avgpool"), in, p);
    }

    std::string
    globalPool(const std::string &in, PoolParams::Mode mode)
    {
        PoolParams p;
        p.mode = mode;
        p.global = true;
        return net.addPooling(uniq("gpool"), in, p);
    }

    std::string
    fcRelu(const std::string &in, std::int64_t n)
    {
        FcParams p;
        p.out_features = n;
        return relu(net.addFullyConnected(uniq("fc"), in, p));
    }

    std::string
    fc(const std::string &in, std::int64_t n)
    {
        FcParams p;
        p.out_features = n;
        return net.addFullyConnected(uniq("fc"), in, p);
    }

    std::string
    lrn(const std::string &in)
    {
        LrnParams p;
        return net.addLrn(uniq("lrn"), in, p);
    }

    std::string
    dropout(const std::string &in)
    {
        return net.addDropout(uniq("drop"), in);
    }

    std::string
    softmax(const std::string &in)
    {
        return net.addSoftmax(uniq("prob"), in);
    }

    /**
     * Classic GoogLeNet inception module: 6 convs, 1 internal max
     * pool. Channel tuple follows the paper's naming.
     */
    std::string
    inceptionV1(const std::string &in, std::int64_t c1, std::int64_t c3r,
                std::int64_t c3, std::int64_t c5r, std::int64_t c5,
                std::int64_t cp)
    {
        auto b1 = convRelu(in, c1, 1);
        auto b2 = convRelu(convRelu(in, c3r, 1), c3, 3, 1, 1);
        auto b3 = convRelu(convRelu(in, c5r, 1), c5, 5, 1, 2);
        auto b4 = convRelu(maxPool(in, 3, 1, 1), cp, 1);
        return net.addConcat(uniq("incept"), {b1, b2, b3, b4});
    }

    /**
     * Inception-v2 style module (double-3x3 tower): 7 convs, 1 max
     * pool.
     */
    std::string
    inceptionV2(const std::string &in, std::int64_t c1, std::int64_t c3r,
                std::int64_t c3, std::int64_t d3r, std::int64_t d3,
                std::int64_t cp)
    {
        auto b1 = convRelu(in, c1, 1);
        auto b2 = convRelu(convRelu(in, c3r, 1), c3, 3, 1, 1);
        auto t = convRelu(in, d3r, 1);
        t = convRelu(t, d3, 3, 1, 1);
        auto b3 = convRelu(t, d3, 3, 1, 1);
        auto b4 = convRelu(maxPool(in, 3, 1, 1), cp, 1);
        return net.addConcat(uniq("incept"), {b1, b2, b3, b4});
    }

  private:
    int ctr_ = 0;
};

// ---------------------------------------------------------------------
// Classification models
// ---------------------------------------------------------------------

Network
buildAlexnet(std::int64_t batch)
{
    NetBuilder b("alexnet");
    auto x = b.net.addInput("data", Dims(batch, 3, 227, 227));
    x = b.convRelu(x, 96, 11, 4, 0);
    x = b.lrn(x);
    x = b.maxPool(x, 3, 2);
    x = b.convRelu(x, 256, 5, 1, 2, 2);
    x = b.lrn(x);
    x = b.maxPool(x, 3, 2);
    x = b.convRelu(x, 384, 3, 1, 1);
    x = b.convRelu(x, 384, 3, 1, 1, 2);
    x = b.convRelu(x, 256, 3, 1, 1, 2);
    x = b.maxPool(x, 3, 2);
    x = b.dropout(b.fcRelu(x, 4096));
    x = b.dropout(b.fcRelu(x, 4096));
    x = b.fc(x, 1000);
    x = b.softmax(x);
    b.net.markOutput(x);
    return std::move(b.net);
}

Network
buildVgg16(std::int64_t batch)
{
    NetBuilder b("vgg-16");
    auto x = b.net.addInput("data", Dims(batch, 3, 224, 224));
    const std::int64_t cfg[5][3] = {
        {64, 64, 0}, {128, 128, 0}, {256, 256, 256},
        {512, 512, 512}, {512, 512, 512}};
    for (const auto &stage : cfg) {
        for (int i = 0; i < 3; i++)
            if (stage[i])
                x = b.convRelu(x, stage[i], 3, 1, 1);
        x = b.maxPool(x, 2, 2);
    }
    x = b.dropout(b.fcRelu(x, 4096));
    x = b.dropout(b.fcRelu(x, 4096));
    x = b.fc(x, 1000);
    x = b.softmax(x);
    b.net.markOutput(x);
    return std::move(b.net);
}

Network
buildResnet18(std::int64_t batch)
{
    NetBuilder b("resnet-18");
    auto x = b.net.addInput("data", Dims(batch, 3, 224, 224));
    x = b.convBnRelu(x, 64, 7, 2, 3);
    x = b.maxPool(x, 3, 2, 1);

    auto block = [&](const std::string &in, std::int64_t ch,
                     std::int64_t stride, bool project) {
        auto y = b.convBnRelu(in, ch, 3, stride, 1);
        y = b.conv(y, ch, 3, 1, 1);
        y = b.net.addBatchNorm(b.uniq("bn"), y);
        y = b.net.addScale(b.uniq("scale"), y);
        std::string shortcut = in;
        if (project)
            shortcut = b.conv(in, ch, 1, stride, 0);
        auto sum = b.net.addEltwise(b.uniq("res"), {y, shortcut}, {});
        return b.relu(sum);
    };

    // The deployed Caffe variant projects in the first block of every
    // stage (21 convs total, matching Table II).
    x = block(x, 64, 1, true);
    x = block(x, 64, 1, false);
    x = block(x, 128, 2, true);
    x = block(x, 128, 1, false);
    x = block(x, 256, 2, true);
    x = block(x, 256, 1, false);
    x = block(x, 512, 2, true);
    x = block(x, 512, 1, false);

    x = b.globalPool(x, PoolParams::Mode::kMax);
    x = b.fc(x, 1000);
    x = b.softmax(x);
    b.net.markOutput(x);
    return std::move(b.net);
}

Network
buildGooglenet(std::int64_t batch)
{
    NetBuilder b("googlenet");
    auto x = b.net.addInput("data", Dims(batch, 3, 224, 224));
    x = b.convRelu(x, 64, 7, 2, 3);
    x = b.maxPool(x, 3, 2, 1);
    x = b.lrn(x);
    x = b.convRelu(x, 64, 1);
    x = b.convRelu(x, 192, 3, 1, 1);
    x = b.lrn(x);
    x = b.maxPool(x, 3, 2, 1);

    x = b.inceptionV1(x, 64, 96, 128, 16, 32, 32);   // 3a
    x = b.inceptionV1(x, 128, 128, 192, 32, 96, 64); // 3b
    x = b.maxPool(x, 3, 2, 1);
    x = b.inceptionV1(x, 192, 96, 208, 16, 48, 64);  // 4a

    // Auxiliary classifier head 1 (training-only: never marked as an
    // output, so the engine builder's dead-layer pass removes it).
    auto aux1 = b.globalPool(x, PoolParams::Mode::kAvg);
    aux1 = b.dropout(b.fcRelu(aux1, 2048));
    aux1 = b.softmax(b.fc(aux1, 1000));

    x = b.inceptionV1(x, 160, 112, 224, 24, 64, 64);  // 4b
    x = b.inceptionV1(x, 128, 128, 256, 24, 64, 64);  // 4c
    x = b.inceptionV1(x, 112, 144, 288, 32, 64, 64);  // 4d

    auto aux2 = b.globalPool(x, PoolParams::Mode::kAvg);
    aux2 = b.dropout(b.fcRelu(aux2, 2048));
    aux2 = b.softmax(b.fc(aux2, 1000));

    x = b.inceptionV1(x, 256, 160, 320, 32, 128, 128); // 4e
    x = b.maxPool(x, 3, 2, 1);
    x = b.inceptionV1(x, 256, 160, 320, 32, 128, 128); // 5a
    x = b.inceptionV1(x, 384, 192, 384, 48, 128, 128); // 5b

    x = b.globalPool(x, PoolParams::Mode::kMax);
    x = b.dropout(x);
    x = b.fc(x, 1000);
    x = b.softmax(x);
    b.net.markOutput(x);
    return std::move(b.net);
}

Network
buildInceptionV4(std::int64_t batch)
{
    NetBuilder b("inception-v4");
    auto x = b.net.addInput("data", Dims(batch, 3, 299, 299));

    // Stem: 10 convs, 2 max pools.
    x = b.convRelu(x, 32, 3, 2);
    x = b.convRelu(x, 32, 3);
    x = b.convRelu(x, 64, 3, 1, 1);
    {
        auto p = b.maxPool(x, 3, 2);
        auto c = b.convRelu(x, 96, 3, 2);
        x = b.net.addConcat(b.uniq("stem_mix1"), {p, c});
    }
    {
        auto a = b.convRelu(b.convRelu(x, 64, 1), 96, 3);
        auto t = b.convRelu(x, 64, 1);
        t = b.convRelu(t, 64, 3, 1, 1);
        auto c = b.convRelu(t, 96, 3);
        x = b.net.addConcat(b.uniq("stem_mix2"), {a, c});
    }
    {
        auto c = b.convRelu(x, 192, 3, 2);
        auto p = b.maxPool(x, 3, 2);
        x = b.net.addConcat(b.uniq("stem_mix3"), {c, p});
    }

    // 4x Inception-A: 7 convs, 1 max pool each.
    for (int i = 0; i < 4; i++) {
        auto b1 = b.convRelu(x, 96, 1);
        auto b2 = b.convRelu(b.convRelu(x, 64, 1), 96, 3, 1, 1);
        auto t = b.convRelu(x, 64, 1);
        t = b.convRelu(t, 96, 3, 1, 1);
        auto b3 = b.convRelu(t, 96, 3, 1, 1);
        auto b4 = b.convRelu(b.maxPool(x, 3, 1, 1), 96, 1);
        x = b.net.addConcat(b.uniq("inceptA"), {b1, b2, b3, b4});
    }

    // Reduction-A: 4 convs, 1 max pool.
    {
        auto b1 = b.convRelu(x, 384, 3, 2);
        auto t = b.convRelu(x, 192, 1);
        t = b.convRelu(t, 224, 3, 1, 1);
        auto b2 = b.convRelu(t, 256, 3, 2);
        auto b3 = b.maxPool(x, 3, 2);
        x = b.net.addConcat(b.uniq("reductA"), {b1, b2, b3});
    }

    // 7x Inception-B: 10 convs, 1 max pool each, with the published
    // factorized 1x7 / 7x1 towers.
    for (int i = 0; i < 7; i++) {
        auto b1 = b.convRelu(x, 384, 1);
        auto t2 = b.convRelu(x, 192, 1);
        t2 = b.convRectRelu(t2, 224, 1, 7);
        auto b2 = b.convRectRelu(t2, 256, 7, 1);
        auto t3 = b.convRelu(x, 192, 1);
        t3 = b.convRectRelu(t3, 192, 1, 7);
        t3 = b.convRectRelu(t3, 224, 7, 1);
        t3 = b.convRectRelu(t3, 224, 1, 7);
        auto b3 = b.convRectRelu(t3, 256, 7, 1);
        auto b4 = b.convRelu(b.maxPool(x, 3, 1, 1), 128, 1);
        x = b.net.addConcat(b.uniq("inceptB"), {b1, b2, b3, b4});
    }

    // Reduction-B: 6 convs, 1 max pool.
    {
        auto t1 = b.convRelu(x, 192, 1);
        auto b1 = b.convRelu(t1, 192, 3, 2);
        auto t2 = b.convRelu(x, 256, 1);
        t2 = b.convRectRelu(t2, 256, 1, 7);
        t2 = b.convRectRelu(t2, 320, 7, 1);
        auto b2 = b.convRelu(t2, 320, 3, 2);
        auto b3 = b.maxPool(x, 3, 2);
        x = b.net.addConcat(b.uniq("reductB"), {b1, b2, b3});
    }

    // 3x Inception-C: 10 convs, 1 max pool each, with the published
    // 1x3 / 3x1 splits.
    for (int i = 0; i < 3; i++) {
        auto b1 = b.convRelu(x, 256, 1);
        auto t2 = b.convRelu(x, 384, 1);
        auto b2a = b.convRectRelu(t2, 256, 1, 3);
        auto b2b = b.convRectRelu(t2, 256, 3, 1);
        auto t3 = b.convRelu(x, 384, 1);
        t3 = b.convRectRelu(t3, 448, 1, 3);
        t3 = b.convRectRelu(t3, 512, 3, 1);
        auto b3a = b.convRectRelu(t3, 256, 1, 3);
        auto b3b = b.convRectRelu(t3, 256, 3, 1);
        auto b4 = b.convRelu(b.maxPool(x, 3, 1, 1), 256, 1);
        x = b.net.addConcat(b.uniq("inceptC"),
                            {b1, b2a, b2b, b3a, b3b, b4});
    }

    // Tail: 1 conv + global max pool (149 convs / 19 max pools total).
    x = b.convRelu(x, 1536, 1);
    x = b.globalPool(x, PoolParams::Mode::kMax);
    x = b.dropout(x);
    x = b.fc(x, 1000);
    x = b.softmax(x);
    b.net.markOutput(x);
    return std::move(b.net);
}

// ---------------------------------------------------------------------
// Detection models
// ---------------------------------------------------------------------

/** DetectNet-style GoogLeNet FCN: 59 convs, 12 max pools. */
Network
buildDetectnetFamily(const std::string &name, std::int64_t input_hw,
                     std::int64_t num_classes, std::int64_t batch)
{
    NetBuilder b(name);
    auto x = b.net.addInput("data", Dims(batch, 3, input_hw, input_hw));
    x = b.convRelu(x, 64, 7, 2, 3);
    x = b.maxPool(x, 3, 2, 1);
    x = b.convRelu(x, 64, 1);
    x = b.convRelu(x, 192, 3, 1, 1);
    x = b.maxPool(x, 3, 2, 1);

    x = b.inceptionV1(x, 64, 96, 128, 16, 32, 32);
    x = b.inceptionV1(x, 128, 128, 192, 32, 96, 64);
    x = b.maxPool(x, 3, 2, 1);
    x = b.inceptionV1(x, 192, 96, 208, 16, 48, 64);
    x = b.inceptionV1(x, 160, 112, 224, 24, 64, 64);
    x = b.inceptionV1(x, 128, 128, 256, 24, 64, 64);
    x = b.inceptionV1(x, 112, 144, 288, 32, 64, 64);
    x = b.inceptionV1(x, 256, 160, 320, 32, 128, 128);
    // DetectNet keeps stride 16 here (no pool4) for dense coverage.
    x = b.inceptionV1(x, 256, 160, 320, 32, 128, 128);
    x = b.inceptionV1(x, 384, 192, 384, 48, 128, 128);

    // FCN heads: per-cell coverage and bounding-box regression.
    auto coverage = b.conv(x, num_classes, 1);
    coverage = b.net.addActivation(b.uniq("cov_sig"), coverage,
                                   {ActivationParams::Mode::kSigmoid});
    auto bbox = b.conv(x, 4 * num_classes, 1);
    b.net.markOutput(coverage);
    b.net.markOutput(bbox);
    return std::move(b.net);
}

Network
buildTinyYolov3(std::int64_t batch)
{
    NetBuilder b("tiny-yolov3");
    auto x = b.net.addInput("data", Dims(batch, 3, 416, 416));

    auto lrelu = [&](const std::string &in) {
        ActivationParams p;
        p.mode = ActivationParams::Mode::kLeakyRelu;
        p.alpha = 0.1f;
        return b.net.addActivation(b.uniq("lrelu"), in, p);
    };
    auto convL = [&](const std::string &in, std::int64_t oc,
                     std::int64_t k, std::int64_t s = 1,
                     std::int64_t pad = 0) {
        return lrelu(b.conv(in, oc, k, s, pad));
    };

    x = convL(x, 16, 3, 1, 1);
    x = b.maxPool(x, 2, 2);
    x = convL(x, 32, 3, 1, 1);
    x = b.maxPool(x, 2, 2);
    x = convL(x, 64, 3, 1, 1);
    x = b.maxPool(x, 2, 2);
    x = convL(x, 128, 3, 1, 1);
    x = b.maxPool(x, 2, 2);
    auto route = convL(x, 256, 3, 1, 1);
    x = b.maxPool(route, 2, 2);
    x = convL(x, 512, 3, 1, 1);
    x = b.maxPool(x, 3, 1, 1);
    x = convL(x, 1024, 3, 1, 1);
    auto neck = convL(x, 256, 1);
    auto h1 = convL(neck, 512, 3, 1, 1);
    auto det1 = b.conv(h1, 255, 1);
    RegionParams reg;
    reg.num_anchors = 3;
    reg.num_classes = 80;
    auto y1 = b.net.addRegion("yolo_13", det1, reg);

    auto up = convL(neck, 128, 1);
    up = b.net.addUpsample(b.uniq("upsample"), up, {2});
    auto cat = b.net.addConcat(b.uniq("route"), {up, route});
    auto h2 = convL(cat, 256, 3, 1, 1);
    auto det2 = b.conv(h2, 255, 1);
    auto y2 = b.net.addRegion("yolo_26", det2, reg);

    b.net.markOutput(y1);
    b.net.markOutput(y2);
    return std::move(b.net);
}

Network
buildMobilenetV1(std::int64_t batch)
{
    NetBuilder b("mobilenetv1");
    auto x = b.net.addInput("data", Dims(batch, 3, 300, 300));
    x = b.convBnRelu(x, 32, 3, 2, 1);

    auto dwSep = [&](const std::string &in, std::int64_t in_ch,
                     std::int64_t out_ch, std::int64_t stride) {
        auto d = b.convBnRelu(in, in_ch, 3, stride, 1, in_ch);
        return b.convBnRelu(d, out_ch, 1);
    };

    x = dwSep(x, 32, 64, 1);
    x = dwSep(x, 64, 128, 2);
    x = dwSep(x, 128, 128, 1);
    x = dwSep(x, 128, 256, 2);
    x = dwSep(x, 256, 256, 1);
    x = dwSep(x, 256, 512, 2);
    for (int i = 0; i < 5; i++)
        x = dwSep(x, 512, 512, 1);
    x = dwSep(x, 512, 1024, 2);
    x = dwSep(x, 1024, 1024, 1);

    x = b.globalPool(x, PoolParams::Mode::kMax);
    // The TF graph's box-predictor stack folds into a dense layer
    // plus a 1x1 class/box conv (keeps Table II's 28-conv count and
    // the 26 MB parameter budget of ssd_mobilenet_v1).
    x = b.fcRelu(x, 1600);
    x = b.conv(x, 1001, 1);
    x = b.softmax(x);
    b.net.markOutput(x);
    return std::move(b.net);
}

Network
buildMtcnn(std::int64_t batch)
{
    NetBuilder b("mtcnn");

    auto prelu = [&](const std::string &in) {
        ActivationParams p;
        p.mode = ActivationParams::Mode::kPRelu;
        return b.net.addActivation(b.uniq("prelu"), in, p);
    };

    // P-Net: 5 convs, 1 max pool.
    auto p = b.net.addInput("pnet_data", Dims(batch, 3, 12, 12));
    p = prelu(b.conv(p, 10, 3));
    p = b.maxPool(p, 2, 2);
    p = prelu(b.conv(p, 16, 3));
    p = prelu(b.conv(p, 32, 3));
    auto p_cls = b.softmax(b.conv(p, 2, 1));
    auto p_reg = b.conv(p, 4, 1);
    b.net.markOutput(p_cls);
    b.net.markOutput(p_reg);

    // R-Net: 3 convs, 2 max pools.
    auto r = b.net.addInput("rnet_data", Dims(batch, 3, 24, 24));
    r = prelu(b.conv(r, 28, 3));
    r = b.maxPool(r, 3, 2);
    r = prelu(b.conv(r, 48, 3));
    r = b.maxPool(r, 3, 2);
    r = prelu(b.conv(r, 64, 2));
    r = b.fcRelu(r, 128);
    auto r_cls = b.softmax(b.fc(r, 2));
    auto r_reg = b.fc(r, 4);
    b.net.markOutput(r_cls);
    b.net.markOutput(r_reg);

    // O-Net: 4 convs, 3 max pools.
    auto o = b.net.addInput("onet_data", Dims(batch, 3, 48, 48));
    o = prelu(b.conv(o, 32, 3));
    o = b.maxPool(o, 3, 2);
    o = prelu(b.conv(o, 64, 3));
    o = b.maxPool(o, 3, 2);
    o = prelu(b.conv(o, 64, 3));
    o = b.maxPool(o, 2, 2);
    o = prelu(b.conv(o, 128, 2));
    o = b.fcRelu(o, 256);
    auto o_cls = b.softmax(b.fc(o, 2));
    auto o_reg = b.fc(o, 4);
    auto o_lmk = b.fc(o, 10);
    b.net.markOutput(o_cls);
    b.net.markOutput(o_reg);
    b.net.markOutput(o_lmk);
    return std::move(b.net);
}

Network
buildSsdInceptionV2(std::int64_t batch)
{
    NetBuilder b("ssd-inception-v2");
    auto x = b.net.addInput("data", Dims(batch, 3, 300, 300));
    x = b.convRelu(x, 64, 7, 2, 3);
    x = b.maxPool(x, 3, 2, 1);
    x = b.convRelu(x, 64, 1);
    x = b.convRelu(x, 192, 3, 1, 1);
    x = b.maxPool(x, 3, 2, 1);

    // 10 inception-v2 modules (7 convs, 1 max pool each).
    x = b.inceptionV2(x, 64, 64, 64, 64, 96, 32);
    x = b.inceptionV2(x, 64, 64, 96, 64, 96, 64);
    auto feat1 = b.inceptionV2(x, 128, 96, 160, 96, 112, 64);
    x = b.inceptionV2(feat1, 224, 64, 96, 96, 128, 128);
    x = b.inceptionV2(x, 192, 96, 128, 96, 128, 128);
    x = b.inceptionV2(x, 160, 128, 160, 128, 160, 96);
    x = b.inceptionV2(x, 96, 128, 192, 160, 192, 96);
    auto feat2 = b.inceptionV2(x, 352, 192, 320, 160, 224, 128);
    x = b.inceptionV2(feat2, 256, 192, 320, 192, 224, 128);
    auto feat3 = b.inceptionV2(x, 352, 192, 320, 192, 224, 128);

    // Extra SSD feature stages: 3 x (1x1 reduce + 3x3 stride-2).
    auto feat4 = b.convRelu(b.convRelu(feat3, 256, 1), 512, 3, 2, 1);
    auto feat5 = b.convRelu(b.convRelu(feat4, 128, 1), 256, 3, 2, 1);
    auto feat6 = b.convRelu(b.convRelu(feat5, 128, 1), 256, 3, 2, 1);

    // First feature map gets an extra normalization conv.
    feat1 = b.conv(feat1, 512, 1);

    // Heads: loc + conf on 5 scales (4 anchors each).
    constexpr std::int64_t kAnchors = 4;
    constexpr std::int64_t kClasses = 91;
    std::vector<std::string> confs;
    for (const auto &f : {feat1, feat2, feat4, feat5, feat6}) {
        auto loc = b.conv(f, kAnchors * 4, 3, 1, 1);
        auto conf = b.conv(f, kAnchors * kClasses, 3, 1, 1);
        b.net.markOutput(loc);
        confs.push_back(conf);
    }

    DetectionOutputParams dp;
    dp.num_classes = kClasses;
    auto det = b.net.addDetectionOutput("detection_out", confs, dp);
    b.net.markOutput(det);
    return std::move(b.net);
}

// ---------------------------------------------------------------------
// Segmentation
// ---------------------------------------------------------------------

Network
buildFcnResnet18(std::int64_t batch)
{
    NetBuilder b("fcn-resnet18-cityscapes");
    auto x = b.net.addInput("data", Dims(batch, 3, 256, 512));
    x = b.convBnRelu(x, 64, 7, 2, 3);
    x = b.maxPool(x, 3, 2, 1);

    auto block = [&](const std::string &in, std::int64_t ch,
                     std::int64_t stride, bool project) {
        auto y = b.convBnRelu(in, ch, 3, stride, 1);
        y = b.conv(y, ch, 3, 1, 1);
        y = b.net.addBatchNorm(b.uniq("bn"), y);
        y = b.net.addScale(b.uniq("scale"), y);
        std::string shortcut = in;
        if (project)
            shortcut = b.conv(in, ch, 1, stride, 0);
        auto sum = b.net.addEltwise(b.uniq("res"), {y, shortcut}, {});
        return b.relu(sum);
    };

    x = block(x, 64, 1, false);
    x = block(x, 64, 1, false);
    x = block(x, 128, 2, true);
    x = block(x, 128, 1, false);
    x = block(x, 256, 2, true);
    x = block(x, 256, 1, false);
    x = block(x, 512, 2, true);
    x = block(x, 512, 1, false);

    // FCN head: 1x1 score conv (21 cityscapes classes) + 2x deconv.
    auto score = b.conv(x, 21, 1);
    ConvParams up;
    up.out_channels = 21;
    up.kernel = 4;
    up.stride = 2;
    up.pad = 1;
    auto out = b.net.addDeconvolution("upscore", score, up);
    b.net.markOutput(out);
    return std::move(b.net);
}

struct ZooEntry
{
    ZooModelInfo info;
    std::function<Network(std::int64_t)> build;
};

const std::vector<ZooEntry> &
zooTable()
{
    static const std::vector<ZooEntry> table = {
        {{"alexnet", VisionTask::kClassification, "caffe", 5, 3,
          232.56},
         buildAlexnet},
        {{"resnet-18", VisionTask::kClassification, "caffe", 21, 2,
          44.65},
         buildResnet18},
        {{"vgg-16", VisionTask::kClassification, "caffe", 13, 5, 527.8},
         buildVgg16},
        {{"inception-v4", VisionTask::kClassification, "caffe", 149, 19,
          163.12},
         buildInceptionV4},
        {{"googlenet", VisionTask::kClassification, "caffe", 57, 14,
          51.05},
         buildGooglenet},
        {{"ssd-inception-v2", VisionTask::kDetection, "tensorflow", 90,
          12, 95.58},
         buildSsdInceptionV2},
        {{"detectnet-coco-dog", VisionTask::kDetection, "caffe", 59, 12,
          22.82},
         [](std::int64_t n) {
             return buildDetectnetFamily("detectnet-coco-dog", 512, 1,
                                         n);
         }},
        {{"pednet", VisionTask::kDetection, "caffe", 59, 12, 22.82},
         [](std::int64_t n) {
             return buildDetectnetFamily("pednet", 512, 1, n);
         }},
        {{"tiny-yolov3", VisionTask::kDetection, "darknet", 13, 6,
          33.1},
         buildTinyYolov3},
        {{"facenet", VisionTask::kDetection, "caffe", 59, 12, 22.82},
         [](std::int64_t n) {
             return buildDetectnetFamily("facenet", 448, 1, n);
         }},
        {{"mobilenetv1", VisionTask::kDetection, "tensorflow", 28, 1,
          26.07},
         buildMobilenetV1},
        {{"mtcnn", VisionTask::kDetection, "caffe", 12, 6, 1.9},
         buildMtcnn},
        {{"fcn-resnet18-cityscapes", VisionTask::kSegmentation,
          "pytorch", 22, 1, 44.95},
         buildFcnResnet18},
    };
    return table;
}

} // namespace

const std::vector<std::string> &
zooModelNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &e : zooTable())
            out.push_back(e.info.name);
        return out;
    }();
    return names;
}

const ZooModelInfo &
zooModelInfo(const std::string &name)
{
    for (const auto &e : zooTable())
        if (e.info.name == name)
            return e.info;
    fatal("unknown zoo model '", name, "'");
}

Network
buildZooModel(const std::string &name, std::int64_t batch)
{
    for (const auto &e : zooTable())
        if (e.info.name == name) {
            Network net = e.build(batch);
            net.validate();
            return net;
        }
    fatal("unknown zoo model '", name, "'");
}

} // namespace edgert::nn
