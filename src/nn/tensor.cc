#include "nn/tensor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace edgert::nn {

std::size_t
dataTypeSize(DataType t)
{
    switch (t) {
      case DataType::kFloat32:
      case DataType::kInt32:
        return 4;
      case DataType::kFloat16:
        return 2;
      case DataType::kInt8:
        return 1;
    }
    panic("unknown DataType");
}

const char *
dataTypeName(DataType t)
{
    switch (t) {
      case DataType::kFloat32: return "fp32";
      case DataType::kFloat16: return "fp16";
      case DataType::kInt8: return "int8";
      case DataType::kInt32: return "int32";
    }
    panic("unknown DataType");
}

std::string
Dims::toString() const
{
    return std::to_string(n) + "x" + std::to_string(c) + "x" +
           std::to_string(h) + "x" + std::to_string(w);
}

Tensor::Tensor(const Dims &dims) : dims_(dims)
{
    if (!dims.valid())
        fatal("Tensor constructed with invalid dims ", dims.toString());
    data_.assign(static_cast<std::size_t>(dims.volume()), 0.0f);
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

} // namespace edgert::nn
