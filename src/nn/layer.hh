#ifndef EDGERT_NN_LAYER_HH
#define EDGERT_NN_LAYER_HH

/**
 * @file
 * Layer taxonomy of the EdgeRT graph IR.
 *
 * Each layer is a node in the network DAG with typed parameters held
 * in a std::variant. The set covers everything the paper's 13 models
 * need (Table II): convolutions, pooling, fully-connected, the usual
 * activations, batch-norm/scale, LRN (AlexNet/GoogLeNet), concat and
 * eltwise (inception/resnet), softmax, upsampling (FCN/YOLO), the
 * YOLO region head and the SSD detection-output head.
 */

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "nn/tensor.hh"

namespace edgert::nn {

/** Node kinds of the graph IR. */
enum class LayerKind
{
    kInput,
    kConvolution,
    kDeconvolution,
    kPooling,
    kFullyConnected,
    kActivation,
    kBatchNorm,
    kScale,
    kLRN,
    kConcat,
    kEltwise,
    kSoftmax,
    kUpsample,
    kFlatten,
    kDropout,
    kRegion,
    kDetectionOutput,
    kIdentity,
};

/** Printable layer-kind name. */
const char *layerKindName(LayerKind k);

/**
 * Convolution / deconvolution parameters. Kernels default to
 * square; rectangular kernels (inception's factorized 1x7 / 7x1
 * towers) set kernel_w (and pad_w) explicitly.
 */
struct ConvParams
{
    std::int64_t out_channels = 0;
    std::int64_t kernel = 1;   //!< height (and width when square)
    std::int64_t kernel_w = 0; //!< 0 = square (use `kernel`)
    std::int64_t stride = 1;
    std::int64_t pad = 0;      //!< height pad (and width if pad_w<0)
    std::int64_t pad_w = -1;   //!< -1 = same as pad
    std::int64_t dilation = 1;
    std::int64_t groups = 1; //!< == in_channels for depthwise conv
    bool has_bias = true;

    std::int64_t kh() const { return kernel; }
    std::int64_t kw() const { return kernel_w > 0 ? kernel_w : kernel; }
    std::int64_t ph() const { return pad; }
    std::int64_t pw() const { return pad_w >= 0 ? pad_w : pad; }
};

/** Pooling type and geometry. */
struct PoolParams
{
    enum class Mode { kMax, kAvg };

    Mode mode = Mode::kMax;
    std::int64_t kernel = 2;
    std::int64_t stride = 2;
    std::int64_t pad = 0;
    bool global = false; //!< global pooling ignores kernel/stride
};

/** Fully-connected (inner-product) parameters. */
struct FcParams
{
    std::int64_t out_features = 0;
    bool has_bias = true;
};

/** Pointwise activation function. */
struct ActivationParams
{
    enum class Mode { kRelu, kLeakyRelu, kSigmoid, kTanh, kPRelu };

    Mode mode = Mode::kRelu;
    float alpha = 0.1f; //!< slope for leaky relu
};

/** Batch normalization (inference form: y = gamma*(x-mu)/sigma + beta). */
struct BatchNormParams
{
    float epsilon = 1e-5f;
};

/** Channel-wise scale + shift. */
struct ScaleParams
{
    bool has_bias = true;
};

/** Local response normalization (across channels). */
struct LrnParams
{
    std::int64_t local_size = 5;
    float alpha = 1e-4f;
    float beta = 0.75f;
    float k = 2.0f;
};

/** Channel concatenation (inputs share N, H, W). */
struct ConcatParams
{};

/** Elementwise combination of same-shape inputs. */
struct EltwiseParams
{
    enum class Mode { kSum, kProd, kMax };

    Mode mode = Mode::kSum;
};

/** Softmax over the channel dimension. */
struct SoftmaxParams
{};

/** Nearest-neighbour upsampling by an integer factor. */
struct UpsampleParams
{
    std::int64_t factor = 2;
};

/** Flatten C*H*W into C (keeps N). */
struct FlattenParams
{};

/** Dropout is an inference no-op; kept so dead-layer removal has prey. */
struct DropoutParams
{
    float ratio = 0.5f;
};

/** YOLO region head: decodes anchors into box candidates. */
struct RegionParams
{
    std::int64_t num_anchors = 3;
    std::int64_t num_classes = 80;
};

/** SSD detection output: priorbox decode + NMS. */
struct DetectionOutputParams
{
    std::int64_t num_classes = 91;
    float nms_threshold = 0.45f;
    float confidence_threshold = 0.3f;
    std::int64_t keep_top_k = 100;
};

/** No parameters (input / identity). */
struct NoParams
{};

using LayerParams = std::variant<
    NoParams, ConvParams, PoolParams, FcParams, ActivationParams,
    BatchNormParams, ScaleParams, LrnParams, ConcatParams, EltwiseParams,
    SoftmaxParams, UpsampleParams, FlattenParams, DropoutParams,
    RegionParams, DetectionOutputParams>;

/**
 * One node of the network DAG.
 *
 * Layers consume named tensors and produce exactly one named output
 * tensor (multi-output heads are modeled as separate layers reading
 * the same input).
 */
struct Layer
{
    std::int32_t id = -1;
    std::string name;
    LayerKind kind = LayerKind::kIdentity;
    LayerParams params;
    std::vector<std::string> inputs;
    std::string output;

    /** Typed parameter accessor; panics on kind mismatch. */
    template <typename T>
    const T &
    as() const
    {
        return std::get<T>(params);
    }

    /** Number of trainable parameters (weights + bias), shape-aware. */
    std::int64_t paramCount(std::int64_t in_channels) const;
};

} // namespace edgert::nn

#endif // EDGERT_NN_LAYER_HH
