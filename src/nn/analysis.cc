#include "nn/analysis.hh"

namespace edgert::nn {

std::int64_t
layerFlops(const Network &net, const Layer &l)
{
    if (l.inputs.empty())
        return 0;
    Dims in = net.tensor(l.inputs[0]).dims;
    Dims out = net.tensor(l.output).dims;

    switch (l.kind) {
      case LayerKind::kConvolution: {
        const auto &p = l.as<ConvParams>();
        std::int64_t macs_per_out = (in.c / p.groups) * p.kh() *
                                    p.kw();
        return 2 * out.volume() * macs_per_out;
      }
      case LayerKind::kDeconvolution: {
        const auto &p = l.as<ConvParams>();
        std::int64_t macs_per_in = (p.out_channels / p.groups) *
                                   p.kh() * p.kw();
        return 2 * in.volume() * macs_per_in;
      }
      case LayerKind::kFullyConnected: {
        const auto &p = l.as<FcParams>();
        return 2 * in.n * p.out_features * (in.c * in.h * in.w);
      }
      case LayerKind::kPooling: {
        const auto &p = l.as<PoolParams>();
        std::int64_t window = p.global ? in.h * in.w
                                       : p.kernel * p.kernel;
        return out.volume() * window;
      }
      case LayerKind::kActivation:
        return out.volume();
      case LayerKind::kBatchNorm:
      case LayerKind::kScale:
        return 2 * out.volume();
      case LayerKind::kLRN: {
        const auto &p = l.as<LrnParams>();
        return out.volume() * (p.local_size + 4);
      }
      case LayerKind::kEltwise:
        return out.volume() *
               static_cast<std::int64_t>(l.inputs.size() - 1);
      case LayerKind::kSoftmax:
        return 5 * out.volume();
      case LayerKind::kUpsample:
      case LayerKind::kConcat:
      case LayerKind::kFlatten:
      case LayerKind::kIdentity:
      case LayerKind::kDropout:
        return 0;
      case LayerKind::kRegion:
        return 6 * out.volume();
      case LayerKind::kDetectionOutput:
        // Decode + NMS over input candidates; dominated by decode.
        return 10 * in.volume();
      case LayerKind::kInput:
        return 0;
    }
    return 0;
}

std::int64_t
layerInputBytes(const Network &net, const Layer &l,
                std::int64_t elem_size)
{
    std::int64_t total = 0;
    for (const auto &in : l.inputs)
        total += net.tensor(in).dims.volume() * elem_size;
    return total;
}

std::int64_t
layerOutputBytes(const Network &net, const Layer &l,
                 std::int64_t elem_size)
{
    return net.tensor(l.output).dims.volume() * elem_size;
}

std::int64_t
layerWeightBytes(const Network &net, const Layer &l,
                 std::int64_t elem_size)
{
    return net.layerParamCount(l) * elem_size;
}

std::int64_t
networkFlops(const Network &net)
{
    std::int64_t total = 0;
    for (const auto &l : net.layers())
        total += layerFlops(net, l);
    return total;
}

} // namespace edgert::nn
