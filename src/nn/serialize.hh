#ifndef EDGERT_NN_SERIALIZE_HH
#define EDGERT_NN_SERIALIZE_HH

/**
 * @file
 * Binary (de)serialization of Network graphs — the "frozen model
 * file" a deployment ships to the edge device before the engine is
 * built there. Weights are synthetic (seed-derived) so the format
 * stores graph structure only; the on-disk size of a real FP32 model
 * is reported by Network::modelSizeBytes().
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hh"
#include "nn/network.hh"

namespace edgert::nn {

/** Serialize a network to a byte buffer. */
std::vector<std::uint8_t> serializeNetwork(const Network &net);

/**
 * Reconstruct a network from serializeNetwork() output. Model files
 * are untrusted input: malformed bytes — bad magic, truncation,
 * out-of-range layer kinds, graphs that fail validation — yield an
 * error Status, never an abort.
 */
Result<Network>
deserializeNetwork(const std::vector<std::uint8_t> &bytes);

/** Write a serialized network to a file. Fatal on I/O error. */
void saveNetwork(const Network &net, const std::string &path);

/** Load a network from a file; missing files and malformed content
 *  are reported as an error Status. */
Result<Network> loadNetwork(const std::string &path);

} // namespace edgert::nn

#endif // EDGERT_NN_SERIALIZE_HH
