/**
 * @file
 * edgertexec — a trtexec-style command-line driver for EdgeRT.
 *
 * Build an engine for any zoo model (or a saved .ertn network) on a
 * simulated device, measure it, and optionally dump profiles or the
 * serialized plan.
 *
 * Examples:
 *   edgertexec --model resnet-18 --device nx
 *   edgertexec --model googlenet --device agx --int8 --runs 20
 *   edgertexec --model tiny-yolov3 --device nx --threads 8 --profile
 *   edgertexec --model resnet-18 --device nx --save-engine plan.erte
 *   edgertexec --load-engine plan.erte --device agx
 *   edgertexec --model resnet-18 --trace-build --metrics-out=m.json
 */

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "common/cliflags.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "core/builder.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "core/timing_cache.hh"
#include "gpusim/device.hh"
#include "nn/dot.hh"
#include "nn/model_zoo.hh"
#include "nn/serialize.hh"
#include "profile/nvprof.hh"
#include "profile/trace_export.hh"
#include "runtime/context.hh"
#include "runtime/measure.hh"

using namespace edgert;

namespace {

/** Progress chatter ("[edgertexec] ..."); silenced by --quiet. */
void
say(const char *fmt, ...)
{
    if (logLevel() > LogLevel::kInfo)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
}

struct Args
{
    std::string model;
    std::string load_network;    //!< .ertn path
    std::string load_engine;     //!< .erte path
    std::string save_engine;
    std::string device = "nx";
    nn::Precision precision = nn::Precision::kFp16;
    std::uint64_t build_id = 1;
    int jobs = 1;             //!< builder autotuning threads; 0=auto
    std::string timing_cache; //!< persistent tactic-timing cache
    int runs = 10;
    int threads = 0;      //!< >0 enables the throughput protocol
    bool profile = false; //!< print the nvprof-style summary
    bool max_clock = false;
    bool no_nvprof_overhead = false;
    bool verbose_build = false;
    bool quiet = false;        //!< log level kWarn
    bool verbose = false;      //!< log level kDebug
    bool trace_build = false;  //!< span-trace the build phases
    std::string metrics_out;   //!< metric snapshot path
    std::string metrics_format = "json"; //!< json | prom
    std::string dump_dot;   //!< write the model graph as .dot
    std::string dump_trace; //!< write a chrome://tracing timeline
};

void
usage()
{
    std::printf(
        "usage: edgertexec [options]\n"
        "  --model <name>        zoo model (see --list)\n"
        "  --load-network <f>    load a serialized .ertn model\n"
        "  --load-engine <f>     load a serialized .erte plan\n"
        "  --save-engine <f>     write the built plan\n"
        "  --device nx|agx       target platform (default nx)\n"
        "  --fp32|--fp16|--int8  precision (default fp16)\n"
        "  --build-id <n>        pin the build (default 1)\n"
        "  --jobs <n>            parallel autotuning threads "
        "(default 1 = serial,\n"
        "                        0 = one per hardware thread; any "
        "value builds a\n"
        "                        bit-identical engine for a pinned "
        "--build-id)\n"
        "  --timing-cache <f>    persistent tactic-timing cache: "
        "loaded if the\n"
        "                        file exists, updated with this "
        "build's fresh\n"
        "                        measurements, written back. A warm "
        "cache freezes\n"
        "                        tactic choices across rebuilds "
        "(Finding 6\n"
        "                        mitigation) and skips re-timing "
        "known tactics.\n"
        "                        Caches are per device preset.\n"
        "  --runs <n>            latency runs (default 10)\n"
        "  --threads <n>         throughput mode with n streams\n"
        "  --max-clock           MAXN clocks instead of pinned\n"
        "  --no-profiler         drop the nvprof overhead model\n"
        "  --profile             print per-kernel summary\n"
        "  --verbose-build       print the autotuner's choices\n"
        "  --quiet               warnings and errors only\n"
        "  --verbose             debug-level log output (tactic\n"
        "                        choices, cache probes)\n"
        "  --trace-build         record host-side build spans and\n"
        "                        merge them with the device timeline\n"
        "                        into --dump-trace (default\n"
        "                        trace.json); open in\n"
        "                        chrome://tracing\n"
        "  --metrics-out <f>     write the metric-registry snapshot\n"
        "                        (counters, gauges, histograms)\n"
        "  --metrics-format <f>  snapshot format: json (default) "
        "or\n"
        "                        prom (Prometheus text exposition)\n"
        "  --dump-dot <f>        write the model graph (Graphviz)\n"
        "  --dump-trace <f>      write a chrome://tracing timeline\n"
        "  --list                list zoo models\n"
        "Options also accept --opt=value syntax.\n");
}

std::optional<Args>
parse(int argc, char **argv)
{
    Args a;
    FlagParser flags(argc, argv);
    while (flags.next()) {
        if (flags.is("--model"))
            a.model = flags.value();
        else if (flags.is("--load-network"))
            a.load_network = flags.value();
        else if (flags.is("--load-engine"))
            a.load_engine = flags.value();
        else if (flags.is("--save-engine"))
            a.save_engine = flags.value();
        else if (flags.is("--device"))
            a.device = flags.value();
        else if (flags.is("--fp32"))
            a.precision = nn::Precision::kFp32;
        else if (flags.is("--fp16"))
            a.precision = nn::Precision::kFp16;
        else if (flags.is("--int8"))
            a.precision = nn::Precision::kInt8;
        else if (flags.is("--build-id"))
            a.build_id = flags.unsignedValue();
        else if (flags.is("--jobs"))
            a.jobs = static_cast<int>(flags.intValue());
        else if (flags.is("--timing-cache"))
            a.timing_cache = flags.value();
        else if (flags.is("--runs"))
            a.runs = static_cast<int>(flags.intValue());
        else if (flags.is("--threads"))
            a.threads = static_cast<int>(flags.intValue());
        else if (flags.is("--max-clock"))
            a.max_clock = true;
        else if (flags.is("--no-profiler"))
            a.no_nvprof_overhead = true;
        else if (flags.is("--profile"))
            a.profile = true;
        else if (flags.is("--verbose-build"))
            a.verbose_build = true;
        else if (flags.is("--quiet"))
            a.quiet = true;
        else if (flags.is("--verbose"))
            a.verbose = true;
        else if (flags.is("--trace-build"))
            a.trace_build = true;
        else if (flags.is("--metrics-out"))
            a.metrics_out = flags.value();
        else if (flags.is("--metrics-format")) {
            a.metrics_format = flags.value();
            if (a.metrics_format != "json" &&
                a.metrics_format != "prom")
                fatal("invalid value '", a.metrics_format,
                      "' for --metrics-format: expected json|prom");
        } else if (flags.is("--dump-dot"))
            a.dump_dot = flags.value();
        else if (flags.is("--dump-trace"))
            a.dump_trace = flags.value();
        else if (flags.is("--list")) {
            for (const auto &m : nn::zooModelNames())
                std::printf("%s\n", m.c_str());
            return std::nullopt;
        } else if (flags.is("--help") || flags.is("-h")) {
            usage();
            return std::nullopt;
        } else {
            std::fprintf(stderr, "unknown option: %s\n",
                         flags.arg().c_str());
            usage();
            return std::nullopt;
        }
    }
    return a;
}

int
run(int argc, char **argv)
{
    auto parsed = parse(argc, argv);
    if (!parsed)
        return 0;
    Args args = *parsed;

    if (args.quiet && args.verbose)
        fatal("--quiet and --verbose are mutually exclusive");
    if (args.quiet)
        setLogLevel(LogLevel::kWarn);
    if (args.verbose)
        setLogLevel(LogLevel::kDebug);
    if (args.trace_build)
        obs::Tracer::global().setEnabled(true);

    gpusim::DeviceSpec dev = args.device == "agx"
                                 ? gpusim::DeviceSpec::xavierAGX()
                                 : gpusim::DeviceSpec::xavierNX();
    if (args.device != "agx" && args.device != "nx")
        fatal("unknown device '", args.device, "' (nx|agx)");
    if (args.max_clock)
        dev = dev.atMaxClock();

    // --- Obtain the engine ---
    core::Engine engine;
    if (!args.load_engine.empty()) {
        std::ifstream f(args.load_engine, std::ios::binary);
        if (!f)
            fatal("cannot open engine '", args.load_engine, "'");
        std::vector<std::uint8_t> bytes(
            (std::istreambuf_iterator<char>(f)),
            std::istreambuf_iterator<char>());
        auto loaded = core::Engine::deserialize(bytes);
        if (!loaded.ok())
            fatal("cannot load engine '", args.load_engine,
                  "': ", loaded.status().toString());
        engine = std::move(loaded).value();
        say("[edgertexec] loaded engine %s (built on %s, "
                    "fingerprint %016llx)\n",
                    engine.modelName().c_str(),
                    engine.deviceName().c_str(),
                    static_cast<unsigned long long>(
                        engine.fingerprint()));
    } else {
        nn::Network net = [&]() {
            if (args.load_network.empty())
                return nn::buildZooModel(
                    args.model.empty() ? "resnet-18" : args.model);
            auto loaded = nn::loadNetwork(args.load_network);
            if (!loaded.ok())
                fatal("cannot load network '", args.load_network,
                      "': ", loaded.status().toString());
            return std::move(loaded).value();
        }();
        say("[edgertexec] model %s: %lld convs, %lld "
                    "max-pools, %.2f MiB fp32\n",
                    net.name().c_str(),
                    static_cast<long long>(net.convCount()),
                    static_cast<long long>(net.maxPoolCount()),
                    static_cast<double>(net.modelSizeBytes()) /
                        (1024.0 * 1024.0));

        if (!args.dump_dot.empty()) {
            std::ofstream f(args.dump_dot);
            if (!f)
                fatal("cannot write '", args.dump_dot, "'");
            nn::writeDot(f, net);
            say("[edgertexec] graph written to %s\n",
                        args.dump_dot.c_str());
        }

        core::BuilderConfig cfg;
        cfg.precision = args.precision;
        cfg.build_id = args.build_id;
        cfg.jobs = args.jobs;

        core::TimingCache cache;
        if (!args.timing_cache.empty()) {
            cache = core::TimingCache::load(args.timing_cache);
            cfg.timing_cache = &cache;
            say("[edgertexec] timing cache %s: %zu entries "
                        "loaded\n",
                        args.timing_cache.c_str(), cache.size());
        }

        core::BuildReport report;
        engine = core::Builder(dev, cfg).build(net, &report);

        if (cfg.timing_cache) {
            auto cs = cache.stats();
            cache.save(args.timing_cache);
            say("[edgertexec] timing cache: %llu hits, "
                        "%llu misses, %llu new entries (%zu total) "
                        "written to %s\n",
                        static_cast<unsigned long long>(cs.hits),
                        static_cast<unsigned long long>(cs.misses),
                        static_cast<unsigned long long>(cs.inserts),
                        cache.size(), args.timing_cache.c_str());
        }
        const auto &w = report.workload;
        say("[edgertexec] tactic sweep: %lld timings "
                    "(%lld cache hits, %lld shared), %.3f s modeled "
                    "device time (%.3f s across %d jobs)\n",
                    static_cast<long long>(w.measurements),
                    static_cast<long long>(w.cache_hits),
                    static_cast<long long>(w.shared),
                    w.serialSeconds(), w.makespanSeconds(w.jobs),
                    w.jobs);
        say("[edgertexec] built engine on %s: %zu steps, "
                    "%lld kernels, %.2f MiB plan, fingerprint "
                    "%016llx\n",
                    dev.name.c_str(), engine.steps().size(),
                    static_cast<long long>(engine.kernelCount()),
                    static_cast<double>(engine.planSizeBytes()) /
                        (1024.0 * 1024.0),
                    static_cast<unsigned long long>(
                        engine.fingerprint()));
        say("[edgertexec] optimizer: %d dead removed, %d "
                    "no-ops elided, %d fused, %d merges\n",
                    report.optimizer.dead_layers_removed,
                    report.optimizer.noops_elided,
                    report.optimizer.layers_fused,
                    report.optimizer.horizontal_merges);
        if (args.verbose_build)
            for (const auto &t : report.tuning)
                std::printf("  %-18s -> %s (%.3f ms, runner-up "
                            "%.3f)\n",
                            t.node_name.c_str(),
                            t.chosen_tactic.c_str(), t.best_ms,
                            t.runner_up_ms);
    }

    if (!args.save_engine.empty()) {
        auto bytes = engine.serialize();
        std::ofstream f(args.save_engine, std::ios::binary);
        if (!f)
            fatal("cannot write '", args.save_engine, "'");
        f.write(reinterpret_cast<const char *>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
        say("[edgertexec] plan written to %s (%zu bytes)\n",
                    args.save_engine.c_str(), bytes.size());
    }

    // --- Optional timeline dump (one traced inference) ---
    if (!args.dump_trace.empty() || args.trace_build) {
        std::string trace_path = args.dump_trace.empty()
                                     ? "trace.json"
                                     : args.dump_trace;
        gpusim::GpuSim sim(dev);
        runtime::ExecutionContext ctx(engine, sim, 0);
        ctx.enqueueWeightUpload();
        ctx.enqueueInference(true, true);
        sim.run();
        if (args.trace_build) {
            profile::saveMergedChromeTrace(
                trace_path, obs::Tracer::global().spans(),
                sim.trace(), dev.name);
        } else {
            profile::saveChromeTrace(trace_path, sim.trace(),
                                     dev.name);
        }
        say("[edgertexec] timeline written to %s (open in "
                    "chrome://tracing)\n",
                    trace_path.c_str());
    }

    // --- Measure ---
    if (args.threads > 0) {
        runtime::ThroughputOptions topt;
        topt.threads = args.threads;
        topt.at_max_clock = true;
        auto r = runtime::measureThroughput(engine, dev, topt);
        say("[edgertexec] throughput: %.1f FPS aggregate "
                    "(%.2f per stream), GPU util %.1f%%, copy "
                    "engine %.1f%%\n",
                    r.aggregate_fps, r.per_thread_fps,
                    r.gpu_util_pct, r.copy_busy_pct);
    } else {
        runtime::LatencyOptions lopt;
        lopt.runs = args.runs;
        lopt.with_profiler = !args.no_nvprof_overhead;
        if (args.profile) {
            std::vector<runtime::KernelProfile> kernels;
            auto lat =
                runtime::profileLatency(engine, dev, kernels, lopt);
            say("[edgertexec] latency: %.3f ms (std %.3f), "
                        "memcpy %.3f ms, kernels %.3f ms\n",
                        lat.mean_ms, lat.std_ms, lat.memcpy_mean_ms,
                        lat.kernel_mean_ms);
            std::printf("%-62s %6s %10s %10s\n", "kernel", "calls",
                        "mean ms", "total ms");
            for (const auto &k : kernels)
                std::printf("%-62s %6d %10.4f %10.4f\n",
                            k.name.c_str(), k.calls, k.mean_ms,
                            k.total_ms);
        } else {
            auto lat = runtime::measureLatency(engine, dev, lopt);
            say("[edgertexec] latency on %s @ %.0f MHz: "
                        "%.3f ms (std %.3f) | memcpy %.3f | kernels "
                        "%.3f\n",
                        dev.name.c_str(), dev.gpu_clock_ghz * 1e3,
                        lat.mean_ms, lat.std_ms, lat.memcpy_mean_ms,
                        lat.kernel_mean_ms);
        }
    }

    if (!args.metrics_out.empty()) {
        if (args.metrics_format == "prom")
            obs::MetricRegistry::global().savePromText(
                args.metrics_out);
        else
            obs::MetricRegistry::global().save(args.metrics_out);
        say("[edgertexec] metrics written to %s (%s)\n",
            args.metrics_out.c_str(), args.metrics_format.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // fatal() has already printed the diagnostic through the log
    // sink; a corrupt plan file or bad flag must exit non-zero, not
    // abort or escape as an uncaught exception.
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 1;
    }
}
