/**
 * @file
 * edgertdeploy — drive the EdgeDeploy engine lifecycle from the
 * command line: build engine versions into a repository, gate
 * candidates against the live incumbent, promote, roll back and
 * inspect the lineage.
 *
 * Examples:
 *   edgertdeploy build --repo repo --model resnet-18 --seed 1
 *   edgertdeploy build --repo repo --model resnet-18 --seed 2
 *   edgertdeploy gate --repo repo --model resnet-18
 *   edgertdeploy inspect --repo repo --model resnet-18
 *   edgertdeploy promote --repo repo --model resnet-18 --version 2
 *   edgertdeploy rollback --repo repo --model resnet-18
 *   edgertdeploy list --repo repo
 */

#include <cstdio>
#include <string>

#include "common/cliflags.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "core/builder.hh"
#include "deploy/drift_gate.hh"
#include "deploy/rebuild_worker.hh"
#include "deploy/repository.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "serve/server.hh"

using namespace edgert;

namespace {

void
usage()
{
    std::printf(
        "usage: edgertdeploy <command> [options]\n"
        "commands:\n"
        "  build      build an engine version into the repository\n"
        "             (auto-promoted when nothing is live yet)\n"
        "  gate       drift-gate the newest candidate against the\n"
        "             live version; promote or quarantine it\n"
        "  promote    force-promote a stored version\n"
        "  rollback   revert the live version to its parent\n"
        "  inspect    print one key's manifest\n"
        "  list       list every key in the repository\n"
        "options:\n"
        "  --repo <dir>          repository root (required)\n"
        "  --model <name>        zoo model name\n"
        "  --device <nx|agx>     build target (default nx)\n"
        "  --precision <p>       engine precision: fp32|fp16|int8|"
        "mixed\n"
        "                        (default fp16; selects the "
        "lineage key)\n"
        "  --calibration-seed <n> calibration batch for int8/mixed\n"
        "                        builds (default 0)\n"
        "  --gate-against <p>    gate the candidate against the "
        "live\n"
        "                        version of this precision lineage\n"
        "                        (default: same as --precision; a\n"
        "                        cross-precision gate applies the\n"
        "                        wider disagreement band)\n"
        "  --seed <n>            builder seed for `build` "
        "(default 1)\n"
        "  --jobs <n>            autotuner sweep workers "
        "(default 1)\n"
        "  --version <n>         version for `promote`\n"
        "  --drift-gate-pct <x>  max canary top-1 disagreement, "
        "percent\n"
        "                        (default 0.4)\n"
        "  --metrics-out <f>     write the metric-registry "
        "snapshot\n"
        "  --metrics-format <f>  snapshot format: json (default) "
        "or\n"
        "                        prom (Prometheus text exposition)\n"
        "  --quiet               warnings and errors only\n"
        "Options also accept --opt=value syntax.\n");
}

struct Args
{
    std::string command;
    std::string repo;
    std::string model;
    std::string device = "nx";
    std::string precision = "fp16";
    std::string gate_against; //!< empty = same as precision
    std::uint64_t calibration_seed = 0;
    std::uint64_t seed = 1;
    int jobs = 1;
    int version = -1;
    double drift_gate_pct = -1.0;
    std::string metrics_out;
    std::string metrics_format = "json"; //!< json | prom
};

/** The manifest of `key`, as a printed lineage table. */
void
printManifest(const deploy::Manifest &m)
{
    std::printf("%s (live: %s)\n", m.key.displayName().c_str(),
                m.live_version < 0
                    ? "none"
                    : std::to_string(m.live_version).c_str());
    for (const auto &e : m.entries) {
        std::printf(
            "  v%-3d %-11s build %-4llu fingerprint %016llx "
            "plan %lld B timings %lld/%lld hit",
            e.version, deploy::versionStateName(e.state),
            static_cast<unsigned long long>(e.build_id),
            static_cast<unsigned long long>(e.fingerprint),
            static_cast<long long>(e.plan_bytes),
            static_cast<long long>(e.timing_cache_hits),
            static_cast<long long>(e.timing_measurements +
                                   e.timing_cache_hits));
        if (e.parent_version >= 0)
            std::printf(" parent v%d", e.parent_version);
        if (!e.created_by.empty())
            std::printf(" by %s", e.created_by.c_str());
        if (!e.reason.empty())
            std::printf(" [%s, drift %.3f%%]", e.reason.c_str(),
                        e.drift_pct);
        std::printf("\n");
    }
}

/** fatal()s unless `st` is OK. */
void
must(const Status &st)
{
    if (!st.ok())
        fatal(st.message());
}

int
dispatch(const Args &a)
{
    deploy::EngineRepository repo(a.repo);
    gpusim::DeviceSpec device = serve::parseDevice(a.device);
    nn::Precision precision = nn::parsePrecisionName(a.precision);
    deploy::ModelKey key{a.model, device.name, precision};
    deploy::DriftGateConfig gate_cfg;
    if (a.drift_gate_pct >= 0.0)
        gate_cfg.max_disagreement_pct = a.drift_gate_pct;
    if (a.command == "list") {
        for (const auto &k : repo.list()) {
            auto m = repo.manifest(k);
            if (m.ok())
                printManifest(*m);
        }
        return 0;
    }
    if (a.model.empty())
        fatal("--model is required for '", a.command, "'");

    if (a.command == "build") {
        nn::Network net = nn::buildZooModel(a.model, 1);
        core::BuilderConfig bc;
        bc.precision = precision;
        bc.calibration_seed = a.calibration_seed;
        bc.build_id = a.seed;
        bc.jobs = a.jobs;
        core::Builder builder(device, bc);
        core::BuildReport report;
        core::Engine engine = builder.build(net, &report);
        auto version = repo.put(
            engine, deploy::BuildMeta::from(report, "edgertdeploy"));
        if (!version.ok())
            fatal(version.status().message());
        auto manifest = repo.manifest(key);
        if (manifest.ok() && manifest->live_version < 0)
            must(repo.promote(key, *version));
        std::printf("stored %s v%d (build %llu, fingerprint "
                    "%016llx)%s\n",
                    key.displayName().c_str(), *version,
                    static_cast<unsigned long long>(a.seed),
                    static_cast<unsigned long long>(
                        engine.fingerprint()),
                    manifest.ok() && manifest->live_version < 0
                        ? ", promoted (bootstrap)"
                        : "");
        return 0;
    }
    if (a.command == "gate") {
        auto manifest = repo.manifest(key);
        if (!manifest.ok())
            fatal(manifest.status().message());
        int candidate = a.version;
        if (candidate < 0) {
            for (const auto &e : manifest->entries)
                if (e.state == deploy::VersionState::kCandidate)
                    candidate = e.version;
        }
        if (candidate < 0)
            fatal("no candidate version of ", key.displayName(),
                  " to gate");
        // --gate-against judges the candidate against another
        // precision lineage's live engine (cross-precision
        // promotion); it is still promoted under its own key.
        deploy::ModelKey gate_key = key;
        if (!a.gate_against.empty())
            gate_key.precision =
                nn::parsePrecisionName(a.gate_against);
        auto incumbent = repo.loadLive(gate_key);
        if (!incumbent.ok())
            fatal(incumbent.status().message());
        auto engine = repo.loadVersion(key, candidate);
        if (!engine.ok())
            fatal(engine.status().message());
        deploy::DriftGate gate(gate_cfg);
        deploy::DriftVerdict v = gate.evaluate(*incumbent, *engine);
        std::printf("%s\n", v.toJson().c_str());
        if (v.accepted)
            must(repo.promote(key, candidate));
        else
            must(repo.quarantine(key, candidate, v.reason,
                                 v.disagreement_pct));
        std::printf("%s v%d %s\n", key.displayName().c_str(),
                    candidate,
                    v.accepted ? "promoted" : "quarantined");
        return v.accepted ? 0 : 2;
    }
    if (a.command == "promote") {
        if (a.version < 0)
            fatal("--version is required for 'promote'");
        must(repo.promote(key, a.version));
        std::printf("%s v%d promoted\n", key.displayName().c_str(),
                    a.version);
        return 0;
    }
    if (a.command == "rollback") {
        must(repo.rollback(key));
        auto m = repo.manifest(key);
        std::printf("%s rolled back to v%d\n",
                    key.displayName().c_str(),
                    m.ok() ? m->live_version : -1);
        return 0;
    }
    if (a.command == "inspect") {
        auto m = repo.manifest(key);
        if (!m.ok())
            fatal(m.status().message());
        printManifest(*m);
        return 0;
    }
    usage();
    fatal("unknown command '", a.command, "'");
}

int
run(int argc, char **argv)
{
    Args a;
    FlagParser flags(argc, argv);
    while (flags.next()) {
        if (!flags.isOption()) {
            if (!a.command.empty())
                fatal("unexpected argument '", flags.arg(),
                      "' after command '", a.command, "'");
            a.command = flags.arg();
        } else if (flags.is("--repo"))
            a.repo = flags.value();
        else if (flags.is("--model"))
            a.model = flags.value();
        else if (flags.is("--device"))
            a.device = flags.value();
        else if (flags.is("--precision"))
            a.precision = flags.value();
        else if (flags.is("--gate-against"))
            a.gate_against = flags.value();
        else if (flags.is("--calibration-seed"))
            a.calibration_seed = flags.unsignedValue();
        else if (flags.is("--seed"))
            a.seed = flags.unsignedValue();
        else if (flags.is("--jobs"))
            a.jobs = static_cast<int>(flags.intValue());
        else if (flags.is("--version"))
            a.version = static_cast<int>(flags.intValue());
        else if (flags.is("--drift-gate-pct"))
            a.drift_gate_pct = flags.numberValue();
        else if (flags.is("--metrics-out"))
            a.metrics_out = flags.value();
        else if (flags.is("--metrics-format")) {
            a.metrics_format = flags.value();
            if (a.metrics_format != "json" &&
                a.metrics_format != "prom")
                fatal("invalid value '", a.metrics_format,
                      "' for --metrics-format: expected json|prom");
        } else if (flags.is("--quiet"))
            setLogLevel(LogLevel::kWarn);
        else if (flags.is("--help") || flags.is("-h")) {
            usage();
            return 0;
        } else
            fatal("unknown option: ", flags.arg());
    }
    if (a.command.empty()) {
        usage();
        fatal("missing command");
    }
    if (a.repo.empty())
        fatal("--repo is required");

    int rc = dispatch(a);
    if (!a.metrics_out.empty()) {
        if (a.metrics_format == "prom")
            obs::MetricRegistry::global().savePromText(
                a.metrics_out);
        else
            obs::MetricRegistry::global().save(a.metrics_out);
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    // fatal() has already printed the diagnostic through the log
    // sink; bad arguments must exit non-zero, not abort.
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 1;
    }
}
