/**
 * @file
 * edgertserve — EdgeServe from the command line: run a Triton-style
 * serving scenario on a simulated Jetson fleet and report per-model
 * SLO attainment.
 *
 * Examples:
 *   edgertserve --model=resnet-18:qps=800:slo_ms=15 --devices=nx
 *   edgertserve --model=resnet-18:qps=400:slo_ms=15 \
 *               --model=tiny-yolov3:qps=200:slo_ms=25:arrival=bursty \
 *               --devices=nx,agx --duration-s=30 \
 *               --report-out=serve.json --metrics-out=metrics.json
 *   edgertserve --model=googlenet:qps=300:slo_ms=20:max_batch=16 \
 *               --no-admission --dump-trace=serve_trace.json
 */

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/cliflags.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "deploy/hotswap.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/server.hh"

using namespace edgert;

namespace {

/** Progress chatter ("[edgertserve] ..."); silenced by --quiet. */
void
say(const char *fmt, ...)
{
    if (logLevel() > LogLevel::kInfo)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
}

/** Parse a numeric --model option value or fatal() with the
 *  offending key=value pair (never an uncaught std::sto* throw). */
double
modelNumber(const std::string &k, const std::string &v)
{
    auto r = parseDouble(v);
    if (!r.ok())
        fatal("bad --model option '", k, "=", v,
              "': ", r.status().message());
    return *r;
}

int
modelInt(const std::string &k, const std::string &v)
{
    auto r = parseInt64(v);
    if (!r.ok())
        fatal("bad --model option '", k, "=", v,
              "': ", r.status().message());
    return static_cast<int>(*r);
}

/**
 * Parse one --model spec:
 *   <zoo-name>[@fp16|@int8|@mixed]
 *            [:qps=..][:slo_ms=..][:arrival=poisson|bursty|replay]
 *            [:max_batch=..][:timeout_us=..][:instances=..]
 *            [:burst_factor=..][:period_s=..][:duty=..]
 *            [:calib_seed=..]
 */
serve::ModelConfig
parseModelSpec(const std::string &spec)
{
    auto parts = split(spec, ':');
    if (parts.empty() || parts[0].empty())
        fatal("empty --model spec");
    serve::ModelConfig mc;
    mc.model = parts[0];
    auto at = mc.model.find('@');
    if (at != std::string::npos) {
        mc.precision =
            nn::parsePrecisionName(mc.model.substr(at + 1));
        mc.model.resize(at);
        if (mc.model.empty())
            fatal("empty model name in --model spec '", spec, "'");
    }
    for (std::size_t i = 1; i < parts.size(); i++) {
        auto eq = parts[i].find('=');
        if (eq == std::string::npos)
            fatal("bad --model option '", parts[i],
                  "' (expected key=value)");
        std::string k = parts[i].substr(0, eq);
        std::string v = parts[i].substr(eq + 1);
        if (k == "qps")
            mc.arrivals.qps = modelNumber(k, v);
        else if (k == "slo_ms")
            mc.slo_ms = modelNumber(k, v);
        else if (k == "arrival")
            mc.arrivals.kind = serve::parseArrivalKind(v);
        else if (k == "max_batch")
            mc.batching.max_batch = modelInt(k, v);
        else if (k == "timeout_us")
            mc.batching.timeout_us = modelNumber(k, v);
        else if (k == "instances")
            mc.instances_per_device = modelInt(k, v);
        else if (k == "burst_factor")
            mc.arrivals.burst_factor = modelNumber(k, v);
        else if (k == "period_s")
            mc.arrivals.period_s = modelNumber(k, v);
        else if (k == "duty")
            mc.arrivals.duty = modelNumber(k, v);
        else if (k == "calib_seed")
            mc.calibration_seed =
                static_cast<std::uint64_t>(modelInt(k, v));
        else
            fatal("unknown --model option '", k, "'");
    }
    return mc;
}

/** Parse a <model>[:count] fault spec (default count 1). */
void
parseFailSpec(const char *flag, const std::string &spec,
              std::map<std::string, int> &out)
{
    auto parts = split(spec, ':');
    if (parts.empty() || parts[0].empty())
        fatal("empty ", flag, " spec");
    int count = 1;
    if (parts.size() > 1) {
        auto r = parseInt64(parts[1]);
        if (!r.ok() || *r < 1)
            fatal("bad ", flag, " count '", parts[1],
                  "' (expected a positive integer)");
        count = static_cast<int>(*r);
    }
    if (parts.size() > 2)
        fatal("bad ", flag, " spec '", spec,
              "' (expected model[:count])");
    out[parts[0]] += count;
}

struct Args
{
    serve::ServeConfig cfg;
    std::string metrics_out;
    std::string metrics_format = "json"; //!< json | prom
    std::string report_out;
    bool quiet = false;

    // Engine-lifecycle (EdgeDeploy) options.
    std::string repo;             //!< repository root ("" = off)
    double rebuild_at_s = -1.0;   //!< swap trigger (<0: mid-run)
    std::uint64_t rebuild_seed = 0; //!< 0: cfg.build_id + 1
    double drift_gate_pct = -1.0; //!< <0: gate default

    /** Candidate precision for a cross-precision hot-swap ("" =
     *  keep each model's serving precision). */
    std::string rebuild_precision;
    std::uint64_t rebuild_calib_seed = 0;
};

void
usage()
{
    std::printf(
        "usage: edgertserve [options]\n"
        "  --model <spec>        serve a model; repeatable. Spec:\n"
        "                        name[@fp16|@int8|@mixed]\n"
        "                        [:qps=N][:slo_ms=N]\n"
        "                        [:arrival=poisson|bursty|replay]\n"
        "                        [:max_batch=N][:timeout_us=N]\n"
        "                        [:instances=N][:burst_factor=N]\n"
        "                        [:period_s=N][:duty=N]"
        "[:calib_seed=N]\n"
        "  --devices nx,agx      simulated fleet (default nx)\n"
        "  --duration-s <n>      simulated serving window "
        "(default 10)\n"
        "  --seed <n>            workload seed (default 1)\n"
        "  --no-admission        disable SLO-aware admission "
        "control\n"
        "  --no-batching         disable the dynamic batcher "
        "(FIFO,\n"
        "                        batch 1)\n"
        "  --ram-fraction <f>    device RAM share for contexts "
        "(default 0.5)\n"
        "  --fail-load <m[:n]>   inject n engine-load failures for\n"
        "                        model m (default 1); repeatable\n"
        "  --fail-swap-load <m[:n]>\n"
        "                        inject n *swap-time* candidate "
        "load\n"
        "                        failures for model m; repeatable\n"
        "  --load-attempts <n>   load tries per (model, device)\n"
        "                        before degrading (default 2)\n"
        "  --repo <dir>          engine repository root; enables "
        "the\n"
        "                        drift-gated mid-run hot-swap\n"
        "  --rebuild-at <t>      swap trigger time in seconds\n"
        "                        (default: half the duration)\n"
        "  --rebuild-seed <n>    candidate builder seed (default:\n"
        "                        incumbent seed + 1)\n"
        "  --rebuild-precision <p>\n"
        "                        build swap candidates at this\n"
        "                        precision (fp16|int8|mixed) —\n"
        "                        a cross-precision promotion gated\n"
        "                        against the serving lineage\n"
        "  --rebuild-calib-seed <n>\n"
        "                        calibration batch of int8/mixed\n"
        "                        swap candidates (default 0)\n"
        "  --drift-gate-pct <x>  max tolerated canary top-1\n"
        "                        disagreement, percent "
        "(default 0.4)\n"
        "  --sim-threads <n>     replay worker threads (default 1;\n"
        "                        reports are byte-identical for "
        "any n)\n"
        "  --sim-metrics         publish sim.* / serve.pool.* "
        "gauges\n"
        "  --trace-mode <m>      kernel trace: full|sampled|off\n"
        "                        (default sampled)\n"
        "  --trace-sample <n>    keep 1 in n trace records when\n"
        "                        sampled (default 16)\n"
        "  --report-out <f>      write the serve report JSON\n"
        "  --metrics-out <f>     write the metric-registry "
        "snapshot\n"
        "  --metrics-format <f>  snapshot format: json (default) "
        "or\n"
        "                        prom (Prometheus text "
        "exposition)\n"
        "  --watch-out <f>       enable EdgeWatch; write the watch\n"
        "                        report here (incidents land next "
        "to\n"
        "                        it as <f minus .json>.NNN-"
        "<reason>.json)\n"
        "  --slo-alert-pct <x>   SLO objective for the burn-rate\n"
        "                        alerts, percent (default 99)\n"
        "  --flight-recorder-depth <n>\n"
        "                        flight-recorder ring size "
        "(default 256)\n"
        "  --dump-trace <f>      write a merged chrome://tracing\n"
        "                        timeline (host spans + one "
        "process\n"
        "                        per device)\n"
        "  --quiet               warnings and errors only\n"
        "  --list                list zoo models\n"
        "Options also accept --opt=value syntax.\n");
}

std::optional<Args>
parse(int argc, char **argv)
{
    Args a;
    // The CLI is interactive tooling, not a byte-reproducibility
    // fixture: default to the thinned trace (the library default
    // stays full so canonical reports keep their bytes).
    a.cfg.trace_mode = gpusim::TraceMode::kSampled;
    std::string devices = "nx";
    FlagParser flags(argc, argv);
    while (flags.next()) {
        if (flags.is("--model"))
            a.cfg.models.push_back(parseModelSpec(flags.value()));
        else if (flags.is("--devices"))
            devices = flags.value();
        else if (flags.is("--duration-s"))
            a.cfg.duration_s = flags.numberValue();
        else if (flags.is("--seed"))
            a.cfg.seed = flags.unsignedValue();
        else if (flags.is("--no-admission"))
            a.cfg.admission_control = false;
        else if (flags.is("--no-batching"))
            a.cfg.dynamic_batching = false;
        else if (flags.is("--ram-fraction"))
            a.cfg.ram_fraction = flags.numberValue();
        else if (flags.is("--fail-load"))
            parseFailSpec("--fail-load", flags.value(),
                          a.cfg.faults.engine_load_failures);
        else if (flags.is("--fail-swap-load"))
            parseFailSpec("--fail-swap-load", flags.value(),
                          a.cfg.faults.swap_load_failures);
        else if (flags.is("--load-attempts")) {
            auto n = flags.unsignedValue();
            if (n < 1)
                fatal("invalid value '", n,
                      "' for --load-attempts: must be at least 1");
            a.cfg.faults.max_load_attempts = static_cast<int>(n);
        } else if (flags.is("--repo"))
            a.repo = flags.value();
        else if (flags.is("--rebuild-at"))
            a.rebuild_at_s = flags.numberValue();
        else if (flags.is("--rebuild-seed"))
            a.rebuild_seed = flags.unsignedValue();
        else if (flags.is("--rebuild-precision"))
            a.rebuild_precision = flags.value();
        else if (flags.is("--rebuild-calib-seed"))
            a.rebuild_calib_seed = flags.unsignedValue();
        else if (flags.is("--drift-gate-pct"))
            a.drift_gate_pct = flags.numberValue();
        else if (flags.is("--sim-threads")) {
            auto n = flags.unsignedValue();
            if (n < 1)
                fatal("invalid value '", n,
                      "' for --sim-threads: must be at least 1");
            a.cfg.sim_threads = static_cast<int>(n);
        } else if (flags.is("--sim-metrics"))
            a.cfg.sim_metrics = true;
        else if (flags.is("--trace-mode")) {
            std::string m = flags.value();
            if (m == "full")
                a.cfg.trace_mode = gpusim::TraceMode::kFull;
            else if (m == "sampled")
                a.cfg.trace_mode = gpusim::TraceMode::kSampled;
            else if (m == "off")
                a.cfg.trace_mode = gpusim::TraceMode::kOff;
            else
                fatal("invalid value '", m, "' for --trace-mode: "
                      "expected full|sampled|off");
        } else if (flags.is("--trace-sample")) {
            auto n = flags.unsignedValue();
            if (n < 1)
                fatal("invalid value '", n,
                      "' for --trace-sample: must be at least 1");
            a.cfg.trace_sample_every = static_cast<int>(n);
        } else if (flags.is("--report-out"))
            a.report_out = flags.value();
        else if (flags.is("--metrics-out"))
            a.metrics_out = flags.value();
        else if (flags.is("--metrics-format")) {
            a.metrics_format = flags.value();
            if (a.metrics_format != "json" &&
                a.metrics_format != "prom")
                fatal("invalid value '", a.metrics_format,
                      "' for --metrics-format: expected json|prom");
        } else if (flags.is("--watch-out")) {
            std::string f = flags.value();
            a.cfg.watch.enabled = true;
            a.cfg.watch.out_path = f;
            std::string stem = f;
            const std::string ext = ".json";
            if (stem.size() > ext.size() &&
                stem.compare(stem.size() - ext.size(), ext.size(),
                             ext) == 0)
                stem.resize(stem.size() - ext.size());
            a.cfg.watch.incident_prefix = stem + ".";
        } else if (flags.is("--slo-alert-pct")) {
            double pct = flags.numberValue();
            if (pct <= 0.0 || pct >= 100.0)
                fatal("invalid value '", pct,
                      "' for --slo-alert-pct: must be in (0, 100)");
            a.cfg.watch.slo_objective_pct = pct;
        } else if (flags.is("--flight-recorder-depth")) {
            auto n = flags.unsignedValue();
            if (n < 1)
                fatal("invalid value '", n,
                      "' for --flight-recorder-depth: must be at "
                      "least 1");
            a.cfg.watch.flight_recorder_depth =
                static_cast<int>(n);
        } else if (flags.is("--dump-trace")) {
            a.cfg.trace_out = flags.value();
            obs::Tracer::global().setEnabled(true);
        } else if (flags.is("--quiet"))
            a.quiet = true;
        else if (flags.is("--list")) {
            for (const auto &m : nn::zooModelNames())
                std::printf("%s\n", m.c_str());
            return std::nullopt;
        } else if (flags.is("--help") || flags.is("-h")) {
            usage();
            return std::nullopt;
        } else {
            std::fprintf(stderr, "unknown option: %s\n",
                         flags.arg().c_str());
            usage();
            return std::nullopt;
        }
    }
    for (const auto &d : split(devices, ','))
        a.cfg.devices.push_back(serve::parseDevice(d));
    return a;
}

int
run(int argc, char **argv)
{
    auto parsed = parse(argc, argv);
    if (!parsed)
        return 0;
    Args args = *parsed;
    if (args.quiet)
        setLogLevel(LogLevel::kWarn);
    if (args.cfg.models.empty()) {
        usage();
        fatal("at least one --model is required");
    }

    say("[edgertserve] %zu model(s) on %zu device(s), %.1f s "
        "window, seed %llu, admission %s, batching %s\n",
        args.cfg.models.size(), args.cfg.devices.size(),
        args.cfg.duration_s,
        static_cast<unsigned long long>(args.cfg.seed),
        args.cfg.admission_control ? "on" : "off",
        args.cfg.dynamic_batching ? "on" : "off");

    serve::ServeReport report;
    if (args.repo.empty()) {
        report = serve::runServer(args.cfg);
    } else {
        deploy::EngineRepository repo(args.repo);
        deploy::DriftGateConfig gate_cfg;
        if (args.drift_gate_pct >= 0.0)
            gate_cfg.max_disagreement_pct = args.drift_gate_pct;
        deploy::HotSwapper swapper(repo, gate_cfg);
        double t_s = args.rebuild_at_s >= 0.0
                         ? args.rebuild_at_s
                         : args.cfg.duration_s / 2.0;
        std::uint64_t seed = args.rebuild_seed
                                 ? args.rebuild_seed
                                 : args.cfg.build_id + 1;
        std::optional<nn::Precision> cand_precision;
        if (!args.rebuild_precision.empty())
            cand_precision =
                nn::parsePrecisionName(args.rebuild_precision);
        deploy::HotSwapPlan plan =
            swapper.planSwaps(args.cfg, t_s, seed, 1,
                              cand_precision,
                              args.rebuild_calib_seed);
        for (const auto &o : plan.outcomes) {
            if (!o.status.ok())
                say("[edgertserve] %-18s rebuild failed: %s\n",
                    o.job.model.c_str(),
                    o.status.message().c_str());
            else if (o.promoted)
                say("[edgertserve] %-18s candidate v%d promoted "
                    "(drift %.3f%%), swap at %.2f s\n",
                    o.job.model.c_str(), o.version,
                    o.verdict.disagreement_pct, t_s);
            else
                say("[edgertserve] %-18s candidate v%d "
                    "quarantined: %s\n",
                    o.job.model.c_str(), o.version,
                    o.verdict.detail.c_str());
        }
        report = swapper.runWithSwaps(args.cfg, plan);
    }

    for (const auto &m : report.models) {
        say("[edgertserve] %-18s offered %.1f qps | goodput %.1f "
            "qps | shed %lld | p50 %.2f ms | p99 %.2f ms | SLO "
            "%.1f ms | violations %lld | mean batch %.2f%s\n",
            m.model.c_str(), m.offered_qps, m.goodput_qps,
            static_cast<long long>(m.shed), m.p50_ms, m.p99_ms,
            m.slo_ms, static_cast<long long>(m.slo_violations),
            m.mean_batch, m.degraded ? " | DEGRADED" : "");
        if (m.load_failures > 0)
            say("[edgertserve] %-18s engine-load failures %lld | "
                "rebuilds %lld\n",
                m.model.c_str(),
                static_cast<long long>(m.load_failures),
                static_cast<long long>(m.rebuilds));
        if (m.swaps > 0)
            say("[edgertserve] %-18s swaps %lld (rolled back "
                "%lld%s%s) | active build %llu | pause %.2f ms | "
                "p99 in-swap %.2f ms vs steady %.2f ms\n",
                m.model.c_str(), static_cast<long long>(m.swaps),
                static_cast<long long>(m.swaps_rolled_back),
                m.swap_rollback_reason.empty() ? "" : ": ",
                m.swap_rollback_reason.c_str(),
                static_cast<unsigned long long>(m.active_build_id),
                m.swap_downtime_ms, m.p99_swap_ms,
                m.p99_steady_ms);
    }
    for (const auto &d : report.devices)
        say("[edgertserve] device %-12s %d instance(s) | GPU util "
            "%.1f%% | copy %.1f%% | drained at %.2f s | ctx RAM "
            "%.1f / %.1f MiB\n",
            d.device.c_str(), d.instances, d.sm_util_pct,
            d.copy_busy_pct, d.makespan_s,
            static_cast<double>(d.ram_used_bytes) /
                (1024.0 * 1024.0),
            static_cast<double>(d.ram_budget_bytes) /
                (1024.0 * 1024.0));

    if (!args.report_out.empty()) {
        std::FILE *f = std::fopen(args.report_out.c_str(), "w");
        if (!f)
            fatal("cannot write '", args.report_out, "'");
        std::string json = report.toJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        say("[edgertserve] report written to %s\n",
            args.report_out.c_str());
    }
    if (report.watch.enabled) {
        say("[edgertserve] watch: %lld page / %lld warn alert(s), "
            "%lld anomaly(ies), %lld incident(s)%s%s\n",
            static_cast<long long>(report.watch.page_alerts),
            static_cast<long long>(report.watch.warn_alerts),
            static_cast<long long>(report.watch.anomalies),
            static_cast<long long>(report.watch.incidents),
            args.cfg.watch.out_path.empty() ? "" : ", report at ",
            args.cfg.watch.out_path.c_str());
        if (report.watch.first_page_s >= 0.0)
            say("[edgertserve] watch: first page alert at %.3f s\n",
                report.watch.first_page_s);
    }
    if (!args.metrics_out.empty()) {
        if (args.metrics_format == "prom")
            obs::MetricRegistry::global().savePromText(
                args.metrics_out);
        else
            obs::MetricRegistry::global().save(args.metrics_out);
        say("[edgertserve] metrics written to %s (%s)\n",
            args.metrics_out.c_str(), args.metrics_format.c_str());
    }
    if (!args.cfg.trace_out.empty())
        say("[edgertserve] timeline written to %s (open in "
            "chrome://tracing)\n",
            args.cfg.trace_out.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // fatal() has already printed the diagnostic through the log
    // sink; a bad flag or config must exit non-zero, not abort.
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 1;
    }
}
