/**
 * @file
 * edgertstream — EdgeStream from the command line: serve continuous
 * camera streams through the staged decode → preprocess → infer →
 * postprocess pipeline on a simulated Jetson fleet and report
 * per-stream freshness.
 *
 * Examples:
 *   edgertstream --model=tiny-yolov3 --streams=4 --fps=30
 *   edgertstream --model=tiny-yolov3@int8:streams=8:fps=30 \
 *                --policy=skip_to_latest --devices=nx,agx \
 *                --duration-s=10 --report-out=stream.json
 *   edgertstream --model=resnet-18:fps=15:stale_ms=80 \
 *                --watch-out=freshness.json --metrics-format=prom \
 *                --metrics-out=metrics.prom
 */

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/cliflags.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/server.hh"
#include "stream/stream.hh"

using namespace edgert;

namespace {

/** Progress chatter ("[edgertstream] ..."); silenced by --quiet. */
void
say(const char *fmt, ...)
{
    if (logLevel() > LogLevel::kInfo)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
}

double
modelNumber(const std::string &k, const std::string &v)
{
    auto r = parseDouble(v);
    if (!r.ok())
        fatal("bad --model option '", k, "=", v,
              "': ", r.status().message());
    return *r;
}

int
modelInt(const std::string &k, const std::string &v)
{
    auto r = parseInt64(v);
    if (!r.ok())
        fatal("bad --model option '", k, "=", v,
              "': ", r.status().message());
    return static_cast<int>(*r);
}

/**
 * Parse one --model spec:
 *   <zoo-name>[@fp16|@int8|@mixed]
 *            [:streams=..][:fps=..][:policy=..][:budget=..]
 *            [:stale_ms=..][:arrival=fixed|jitter][:jitter_pct=..]
 *            [:max_batch=..][:timeout_us=..][:instances=..]
 *            [:decode_ms=..][:preprocess_ms=..][:postprocess_ms=..]
 *            [:stage_jitter_pct=..][:calib_seed=..]
 * Per-spec options override the --streams/--fps/--policy globals,
 * which are applied by the caller before the overrides land here.
 */
stream::StreamModelConfig
parseModelSpec(const std::string &spec,
               const stream::StreamModelConfig &defaults)
{
    auto parts = split(spec, ':');
    if (parts.empty() || parts[0].empty())
        fatal("empty --model spec");
    stream::StreamModelConfig mc = defaults;
    mc.model = parts[0];
    auto at = mc.model.find('@');
    if (at != std::string::npos) {
        mc.precision =
            nn::parsePrecisionName(mc.model.substr(at + 1));
        mc.model.resize(at);
        if (mc.model.empty())
            fatal("empty model name in --model spec '", spec, "'");
    }
    for (std::size_t i = 1; i < parts.size(); i++) {
        auto eq = parts[i].find('=');
        if (eq == std::string::npos)
            fatal("bad --model option '", parts[i],
                  "' (expected key=value)");
        std::string k = parts[i].substr(0, eq);
        std::string v = parts[i].substr(eq + 1);
        if (k == "streams")
            mc.streams = modelInt(k, v);
        else if (k == "fps")
            mc.fps = modelNumber(k, v);
        else if (k == "policy")
            mc.policy = stream::parseBackpressurePolicy(v);
        else if (k == "budget")
            mc.frame_budget = modelInt(k, v);
        else if (k == "stale_ms")
            mc.stale_ms = modelNumber(k, v);
        else if (k == "arrival")
            mc.arrival = stream::parseFrameArrival(v);
        else if (k == "jitter_pct")
            mc.arrival_jitter_pct = modelNumber(k, v);
        else if (k == "max_batch")
            mc.batching.max_batch = modelInt(k, v);
        else if (k == "timeout_us")
            mc.batching.timeout_us = modelNumber(k, v);
        else if (k == "instances")
            mc.instances_per_device = modelInt(k, v);
        else if (k == "decode_ms")
            mc.stages.decode_ms = modelNumber(k, v);
        else if (k == "preprocess_ms")
            mc.stages.preprocess_ms = modelNumber(k, v);
        else if (k == "postprocess_ms")
            mc.stages.postprocess_ms = modelNumber(k, v);
        else if (k == "stage_jitter_pct")
            mc.stages.jitter_pct = modelNumber(k, v);
        else if (k == "calib_seed")
            mc.calibration_seed =
                static_cast<std::uint64_t>(modelInt(k, v));
        else
            fatal("unknown --model option '", k, "'");
    }
    return mc;
}

struct Args
{
    stream::StreamConfig cfg;
    std::string metrics_out;
    std::string metrics_format = "json"; //!< json | prom
    std::string report_out;
    bool quiet = false;
};

void
usage()
{
    std::printf(
        "usage: edgertstream [options]\n"
        "  --model <spec>        stream a model; repeatable. Spec:\n"
        "                        name[@fp16|@int8|@mixed]\n"
        "                        [:streams=N][:fps=N]\n"
        "                        [:policy=drop_oldest|"
        "skip_to_latest|block]\n"
        "                        [:budget=N][:stale_ms=N]\n"
        "                        [:arrival=fixed|jitter]"
        "[:jitter_pct=N]\n"
        "                        [:max_batch=N][:timeout_us=N]\n"
        "                        [:instances=N][:decode_ms=N]\n"
        "                        [:preprocess_ms=N]"
        "[:postprocess_ms=N]\n"
        "                        [:stage_jitter_pct=N]"
        "[:calib_seed=N]\n"
        "  --streams <n>         default camera streams per model\n"
        "                        (default 4)\n"
        "  --fps <n>             default per-stream frame rate\n"
        "                        (default 30)\n"
        "  --policy <p>          default backpressure policy\n"
        "                        (default drop_oldest)\n"
        "  --devices nx,agx      simulated fleet (default nx)\n"
        "  --duration-s <n>      camera window in seconds "
        "(default 5)\n"
        "  --seed <n>            frame/stage seed (default 1)\n"
        "  --ram-fraction <f>    device RAM share for contexts "
        "(default 0.5)\n"
        "  --sim-threads <n>     replay worker threads (default 1;\n"
        "                        reports are byte-identical for "
        "any n)\n"
        "  --trace-mode <m>      kernel trace: full|sampled|off\n"
        "                        (default sampled)\n"
        "  --trace-sample <n>    keep 1 in n trace records when\n"
        "                        sampled (default 16)\n"
        "  --report-out <f>      write the stream report JSON\n"
        "  --metrics-out <f>     write the metric-registry "
        "snapshot\n"
        "  --metrics-format <f>  snapshot format: json (default) "
        "or\n"
        "                        prom (Prometheus text "
        "exposition)\n"
        "  --watch-out <f>       write the per-stream freshness\n"
        "                        burn-rate report here\n"
        "  --stale-alert-pct <x> freshness objective for the\n"
        "                        burn-rate alerts, percent "
        "(default 99)\n"
        "  --dump-trace <f>      write a merged chrome://tracing\n"
        "                        timeline (host spans + one "
        "process\n"
        "                        per device)\n"
        "  --quiet               warnings and errors only\n"
        "  --list                list zoo models\n"
        "Options also accept --opt=value syntax.\n");
}

std::optional<Args>
parse(int argc, char **argv)
{
    Args a;
    // Interactive tooling defaults to the thinned trace (the
    // library default stays full for canonical reports).
    a.cfg.trace_mode = gpusim::TraceMode::kSampled;
    std::string devices = "nx";
    stream::StreamModelConfig defaults;
    std::vector<std::string> model_specs;
    FlagParser flags(argc, argv);
    while (flags.next()) {
        if (flags.is("--model"))
            model_specs.push_back(flags.value());
        else if (flags.is("--streams")) {
            auto n = flags.unsignedValue();
            if (n < 1)
                fatal("invalid value '", n,
                      "' for --streams: must be at least 1");
            defaults.streams = static_cast<int>(n);
        } else if (flags.is("--fps"))
            defaults.fps = flags.numberValue();
        else if (flags.is("--policy"))
            defaults.policy =
                stream::parseBackpressurePolicy(flags.value());
        else if (flags.is("--devices"))
            devices = flags.value();
        else if (flags.is("--duration-s"))
            a.cfg.duration_s = flags.numberValue();
        else if (flags.is("--seed"))
            a.cfg.seed = flags.unsignedValue();
        else if (flags.is("--ram-fraction"))
            a.cfg.ram_fraction = flags.numberValue();
        else if (flags.is("--sim-threads")) {
            auto n = flags.unsignedValue();
            if (n < 1)
                fatal("invalid value '", n,
                      "' for --sim-threads: must be at least 1");
            a.cfg.sim_threads = static_cast<int>(n);
        } else if (flags.is("--trace-mode")) {
            std::string m = flags.value();
            if (m == "full")
                a.cfg.trace_mode = gpusim::TraceMode::kFull;
            else if (m == "sampled")
                a.cfg.trace_mode = gpusim::TraceMode::kSampled;
            else if (m == "off")
                a.cfg.trace_mode = gpusim::TraceMode::kOff;
            else
                fatal("invalid value '", m, "' for --trace-mode: "
                      "expected full|sampled|off");
        } else if (flags.is("--trace-sample")) {
            auto n = flags.unsignedValue();
            if (n < 1)
                fatal("invalid value '", n,
                      "' for --trace-sample: must be at least 1");
            a.cfg.trace_sample_every = static_cast<int>(n);
        } else if (flags.is("--report-out"))
            a.report_out = flags.value();
        else if (flags.is("--metrics-out"))
            a.metrics_out = flags.value();
        else if (flags.is("--metrics-format")) {
            a.metrics_format = flags.value();
            if (a.metrics_format != "json" &&
                a.metrics_format != "prom")
                fatal("invalid value '", a.metrics_format,
                      "' for --metrics-format: expected json|prom");
        } else if (flags.is("--watch-out")) {
            a.cfg.watch.enabled = true;
            a.cfg.watch.out_path = flags.value();
        } else if (flags.is("--stale-alert-pct")) {
            double pct = flags.numberValue();
            if (pct <= 0.0 || pct >= 100.0)
                fatal("invalid value '", pct,
                      "' for --stale-alert-pct: must be in "
                      "(0, 100)");
            a.cfg.watch.slo_objective_pct = pct;
        } else if (flags.is("--dump-trace")) {
            a.cfg.trace_out = flags.value();
            obs::Tracer::global().setEnabled(true);
        } else if (flags.is("--quiet"))
            a.quiet = true;
        else if (flags.is("--list")) {
            for (const auto &m : nn::zooModelNames())
                std::printf("%s\n", m.c_str());
            return std::nullopt;
        } else if (flags.is("--help") || flags.is("-h")) {
            usage();
            return std::nullopt;
        } else {
            std::fprintf(stderr, "unknown option: %s\n",
                         flags.arg().c_str());
            usage();
            return std::nullopt;
        }
    }
    for (const auto &spec : model_specs)
        a.cfg.models.push_back(parseModelSpec(spec, defaults));
    for (const auto &d : split(devices, ','))
        a.cfg.devices.push_back(serve::parseDevice(d));
    return a;
}

int
run(int argc, char **argv)
{
    auto parsed = parse(argc, argv);
    if (!parsed)
        return 0;
    Args args = *parsed;
    if (args.quiet)
        setLogLevel(LogLevel::kWarn);
    if (args.cfg.models.empty()) {
        usage();
        fatal("at least one --model is required");
    }

    say("[edgertstream] %zu model(s) on %zu device(s), %.1f s "
        "camera window, seed %llu\n",
        args.cfg.models.size(), args.cfg.devices.size(),
        args.cfg.duration_s,
        static_cast<unsigned long long>(args.cfg.seed));

    stream::StreamReport report = stream::runStreams(args.cfg);

    for (const auto &m : report.models) {
        say("[edgertstream] %-18s %d stream(s) @ %.1f fps (%s, "
            "%s, %s) | produced %lld | completed %lld | dropped "
            "%lld | in flight %lld | stale %.1f%% | age p99 %.2f "
            "ms (budget %.0f ms) | mean batch %.2f%s\n",
            m.model.c_str(), m.streams, m.fps, m.precision.c_str(),
            m.policy.c_str(), m.arrival.c_str(),
            static_cast<long long>(m.freshness.produced),
            static_cast<long long>(m.freshness.completed),
            static_cast<long long>(m.freshness.dropped),
            static_cast<long long>(m.freshness.in_flight),
            m.freshness.stale_rate_pct, m.freshness.age_p99_ms,
            m.stale_ms, m.mean_batch,
            m.conserved ? "" : " | CONSERVATION VIOLATED");
        say("[edgertstream] %-18s stage means: decode %.2f | "
            "preprocess %.2f | queue %.2f | dispatch %.2f | "
            "upload %.2f | compute %.2f | download %.2f | "
            "postprocess %.2f ms\n",
            m.model.c_str(), m.decode_mean_ms, m.preprocess_mean_ms,
            m.queue_mean_ms, m.dispatch_wait_mean_ms,
            m.upload_mean_ms, m.compute_mean_ms, m.download_mean_ms,
            m.postprocess_mean_ms);
    }
    for (const auto &d : report.devices)
        say("[edgertstream] device %-12s %d instance(s) | GPU util "
            "%.1f%% | copy %.1f%% | drained at %.2f s | ctx RAM "
            "%.1f / %.1f MiB\n",
            d.device.c_str(), d.instances, d.sm_util_pct,
            d.copy_busy_pct, d.makespan_s,
            static_cast<double>(d.ram_used_bytes) /
                (1024.0 * 1024.0),
            static_cast<double>(d.ram_budget_bytes) /
                (1024.0 * 1024.0));
    say("[edgertstream] freshness alerts: %lld page / %lld warn / "
        "%lld clear%s%s\n",
        static_cast<long long>(report.freshness_pages),
        static_cast<long long>(report.freshness_warns),
        static_cast<long long>(report.freshness_clears),
        args.cfg.watch.out_path.empty() ? "" : ", report at ",
        args.cfg.watch.out_path.c_str());
    if (report.first_page_s >= 0.0)
        say("[edgertstream] freshness: first page alert at "
            "%.3f s\n",
            report.first_page_s);

    if (!args.report_out.empty()) {
        std::FILE *f = std::fopen(args.report_out.c_str(), "w");
        if (!f)
            fatal("cannot write '", args.report_out, "'");
        std::string json = report.toJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        say("[edgertstream] report written to %s\n",
            args.report_out.c_str());
    }
    if (!args.metrics_out.empty()) {
        if (args.metrics_format == "prom")
            obs::MetricRegistry::global().savePromText(
                args.metrics_out);
        else
            obs::MetricRegistry::global().save(args.metrics_out);
        say("[edgertstream] metrics written to %s (%s)\n",
            args.metrics_out.c_str(), args.metrics_format.c_str());
    }
    if (!args.cfg.trace_out.empty())
        say("[edgertstream] timeline written to %s (open in "
            "chrome://tracing)\n",
            args.cfg.trace_out.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // fatal() has already printed the diagnostic through the log
    // sink; a bad flag or config must exit non-zero, not abort.
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 1;
    }
}
