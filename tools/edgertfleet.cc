/**
 * @file
 * edgertfleet — EdgeFleet from the command line: route a fleet-wide
 * workload across hundreds of simulated Jetson nodes and report
 * per-model SLO attainment, membership events and rollout outcomes.
 *
 * Examples:
 *   edgertfleet --nodes=nx:96 --nodes=agx:24 \
 *               --model=resnet-18:qps=50000:slo_ms=50
 *   edgertfleet --nodes=nx:400 --nodes=agx:80 \
 *               --nodes=nx:20:clock=0.6:name=straggler \
 *               --model=resnet-18:qps=100000:slo_ms=50:nodes_pct=60 \
 *               --route=sojourn --placement=calibrated \
 *               --fail=17:2.0:rejoin=5.0 \
 *               --rollout=resnet-18:build=2:stages=1@3,10@5,100@7 \
 *               --sim-threads=8 --report-out=fleet.json
 */

#include <cstdarg>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/cliflags.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "fleet/fleet.hh"
#include "nn/model_zoo.hh"
#include "obs/metrics.hh"

using namespace edgert;

namespace {

/** Progress chatter ("[edgertfleet] ..."); silenced by --quiet. */
void
say(const char *fmt, ...)
{
    if (logLevel() > LogLevel::kInfo)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
}

double
optNumber(const std::string &k, const std::string &v)
{
    auto r = parseDouble(v);
    if (!r.ok())
        fatal("bad option '", k, "=", v,
              "': ", r.status().message());
    return *r;
}

int
optInt(const std::string &k, const std::string &v)
{
    auto r = parseInt64(v);
    if (!r.ok())
        fatal("bad option '", k, "=", v,
              "': ", r.status().message());
    return static_cast<int>(*r);
}

/**
 * Parse one --model spec:
 *   <zoo-name>[@fp16|@int8|@mixed][:qps=..][:slo_ms=..]
 *            [:arrival=poisson|bursty|replay]
 *            [:max_batch=..][:timeout_us=..][:instances=..]
 *            [:nodes_pct=..][:burst_factor=..][:period_s=..]
 *            [:duty=..][:calib_seed=..]
 * qps is the *aggregate* fleet-wide offered rate.
 */
fleet::FleetModelConfig
parseModelSpec(const std::string &spec)
{
    auto parts = split(spec, ':');
    if (parts.empty() || parts[0].empty())
        fatal("empty --model spec");
    fleet::FleetModelConfig mc;
    mc.model = parts[0];
    auto at = mc.model.find('@');
    if (at != std::string::npos) {
        mc.precision =
            nn::parsePrecisionName(mc.model.substr(at + 1));
        mc.model.resize(at);
        if (mc.model.empty())
            fatal("empty model name in --model spec '", spec, "'");
    }
    for (std::size_t i = 1; i < parts.size(); i++) {
        auto eq = parts[i].find('=');
        if (eq == std::string::npos)
            fatal("bad --model option '", parts[i],
                  "' (expected key=value)");
        std::string k = parts[i].substr(0, eq);
        std::string v = parts[i].substr(eq + 1);
        if (k == "qps")
            mc.arrivals.qps = optNumber(k, v);
        else if (k == "slo_ms")
            mc.slo_ms = optNumber(k, v);
        else if (k == "arrival")
            mc.arrivals.kind = serve::parseArrivalKind(v);
        else if (k == "max_batch")
            mc.batching.max_batch = optInt(k, v);
        else if (k == "timeout_us")
            mc.batching.timeout_us = optNumber(k, v);
        else if (k == "instances")
            mc.instances_per_node = optInt(k, v);
        else if (k == "nodes_pct")
            mc.nodes_pct = optNumber(k, v);
        else if (k == "burst_factor")
            mc.arrivals.burst_factor = optNumber(k, v);
        else if (k == "period_s")
            mc.arrivals.period_s = optNumber(k, v);
        else if (k == "duty")
            mc.arrivals.duty = optNumber(k, v);
        else if (k == "calib_seed")
            mc.calibration_seed =
                static_cast<std::uint64_t>(optInt(k, v));
        else
            fatal("unknown --model option '", k, "'");
    }
    return mc;
}

/** Parse a --fail spec: <node>:<t_s>[:rejoin=<t_s>]. */
fleet::FailureSpec
parseFailure(const std::string &spec)
{
    auto parts = split(spec, ':');
    if (parts.size() < 2)
        fatal("bad --fail spec '", spec,
              "' (expected node:t[:rejoin=t])");
    fleet::FailureSpec f;
    f.node = optInt("fail node", parts[0]);
    f.fail_s = optNumber("fail time", parts[1]);
    for (std::size_t i = 2; i < parts.size(); i++) {
        auto eq = parts[i].find('=');
        if (eq == std::string::npos ||
            parts[i].substr(0, eq) != "rejoin")
            fatal("bad --fail option '", parts[i],
                  "' (expected rejoin=t)");
        f.rejoin_s = optNumber("rejoin", parts[i].substr(eq + 1));
    }
    return f;
}

/**
 * Parse a --rollout spec:
 *   <model>[:build=<id>][:gate_pct=<x>]:stages=<pct>@<t>[,...]
 */
fleet::RolloutSpec
parseRollout(const std::string &spec)
{
    auto parts = split(spec, ':');
    if (parts.empty() || parts[0].empty())
        fatal("empty --rollout spec");
    fleet::RolloutSpec ro;
    ro.model = parts[0];
    for (std::size_t i = 1; i < parts.size(); i++) {
        auto eq = parts[i].find('=');
        if (eq == std::string::npos)
            fatal("bad --rollout option '", parts[i],
                  "' (expected key=value)");
        std::string k = parts[i].substr(0, eq);
        std::string v = parts[i].substr(eq + 1);
        if (k == "build")
            ro.candidate_build_id = static_cast<std::uint64_t>(
                optInt(k, v));
        else if (k == "gate_pct")
            ro.gate.max_disagreement_pct = optNumber(k, v);
        else if (k == "stages") {
            for (const auto &st : split(v, ',')) {
                auto at = st.find('@');
                if (at == std::string::npos)
                    fatal("bad --rollout stage '", st,
                          "' (expected pct@t)");
                fleet::RolloutStage s;
                s.pct = optNumber("stage pct", st.substr(0, at));
                s.t_s = optNumber("stage time", st.substr(at + 1));
                ro.stages.push_back(s);
            }
        } else
            fatal("unknown --rollout option '", k, "'");
    }
    if (ro.stages.empty())
        fatal("--rollout '", spec, "' needs stages=pct@t[,...]");
    return ro;
}

struct Args
{
    fleet::FleetConfig cfg;
    std::string report_out;
    std::string metrics_out;
    std::string metrics_format = "json"; //!< json | prom
    bool quiet = false;
};

void
usage()
{
    std::printf(
        "usage: edgertfleet [options]\n"
        "  --nodes <spec>        add a node pool; repeatable. "
        "Spec:\n"
        "                        device:count[:clock=ghz]"
        "[:name=str]\n"
        "                        e.g. nx:96, agx:24, "
        "nx:8:clock=0.6:name=straggler\n"
        "  --model <spec>        serve a model fleet-wide; "
        "repeatable.\n"
        "                        name[@fp16|@int8|@mixed]"
        "[:qps=N]\n"
        "                        [:slo_ms=N][:nodes_pct=N]\n"
        "                        [:arrival=poisson|bursty|replay]\n"
        "                        [:max_batch=N][:timeout_us=N]\n"
        "                        [:instances=N][:calib_seed=N] — "
        "qps is\n"
        "                        the aggregate fleet-wide rate\n"
        "  --route <p>           routing policy: hash (default) | "
        "sojourn\n"
        "  --placement <p>       engine placement: calibrated "
        "(default,\n"
        "                        measured per-class latency) | "
        "capability\n"
        "                        (peak-FLOPS order)\n"
        "  --vnodes <n>          ring points per node (default "
        "128)\n"
        "  --choices <n>         sojourn candidates per request "
        "(default 4)\n"
        "  --duration-s <n>      simulated window (default 10)\n"
        "  --seed <n>            workload seed (default 1)\n"
        "  --no-admission        disable SLO-aware admission "
        "control\n"
        "  --no-quarantine       keep paging nodes in the rings\n"
        "  --ram-fraction <f>    node RAM share for contexts "
        "(default 0.5)\n"
        "  --fail <spec>         drain a node mid-run; "
        "repeatable.\n"
        "                        node:t[:rejoin=t]\n"
        "  --rollout <spec>      staged rollout; repeatable.\n"
        "                        model[:build=id][:gate_pct=x]"
        ":stages=pct@t[,...]\n"
        "  --sim-threads <n>     replay worker threads (default 1;\n"
        "                        reports are byte-identical for "
        "any n)\n"
        "  --report-out <f>      write the fleet report JSON\n"
        "  --metrics-out <f>     write the metric-registry "
        "snapshot\n"
        "  --metrics-format <f>  snapshot format: json (default) "
        "or\n"
        "                        prom (Prometheus text exposition)\n"
        "  --quiet               warnings and errors only\n"
        "  --list                list zoo models\n"
        "Options also accept --opt=value syntax.\n");
}

std::optional<Args>
parse(int argc, char **argv)
{
    Args a;
    FlagParser flags(argc, argv);
    while (flags.next()) {
        if (flags.is("--nodes"))
            a.cfg.groups.push_back(
                fleet::parseNodeGroup(flags.value()));
        else if (flags.is("--model"))
            a.cfg.models.push_back(parseModelSpec(flags.value()));
        else if (flags.is("--route"))
            a.cfg.route_policy =
                fleet::parseRoutePolicy(flags.value());
        else if (flags.is("--placement"))
            a.cfg.placement =
                fleet::parsePlacementPolicy(flags.value());
        else if (flags.is("--vnodes"))
            a.cfg.vnodes = static_cast<int>(flags.unsignedValue());
        else if (flags.is("--choices"))
            a.cfg.sojourn_choices =
                static_cast<int>(flags.unsignedValue());
        else if (flags.is("--duration-s"))
            a.cfg.duration_s = flags.numberValue();
        else if (flags.is("--seed"))
            a.cfg.seed = flags.unsignedValue();
        else if (flags.is("--no-admission"))
            a.cfg.admission_control = false;
        else if (flags.is("--no-quarantine"))
            a.cfg.quarantine_on_page = false;
        else if (flags.is("--ram-fraction"))
            a.cfg.ram_fraction = flags.numberValue();
        else if (flags.is("--fail"))
            a.cfg.failures.push_back(parseFailure(flags.value()));
        else if (flags.is("--rollout"))
            a.cfg.rollouts.push_back(parseRollout(flags.value()));
        else if (flags.is("--sim-threads")) {
            auto n = flags.unsignedValue();
            if (n < 1)
                fatal("invalid value '", n,
                      "' for --sim-threads: must be at least 1");
            a.cfg.sim_threads = static_cast<int>(n);
        } else if (flags.is("--report-out"))
            a.report_out = flags.value();
        else if (flags.is("--metrics-out"))
            a.metrics_out = flags.value();
        else if (flags.is("--metrics-format")) {
            a.metrics_format = flags.value();
            if (a.metrics_format != "json" &&
                a.metrics_format != "prom")
                fatal("invalid value '", a.metrics_format,
                      "' for --metrics-format: expected json|prom");
        } else if (flags.is("--quiet"))
            a.quiet = true;
        else if (flags.is("--list")) {
            for (const auto &m : nn::zooModelNames())
                std::printf("%s\n", m.c_str());
            return std::nullopt;
        } else if (flags.is("--help") || flags.is("-h")) {
            usage();
            return std::nullopt;
        } else {
            std::fprintf(stderr, "unknown option: %s\n",
                         flags.arg().c_str());
            usage();
            return std::nullopt;
        }
    }
    return a;
}

int
run(int argc, char **argv)
{
    auto parsed = parse(argc, argv);
    if (!parsed)
        return 0;
    Args args = *parsed;
    if (args.quiet)
        setLogLevel(LogLevel::kWarn);
    if (args.cfg.groups.empty()) {
        usage();
        fatal("at least one --nodes pool is required");
    }
    if (args.cfg.models.empty()) {
        usage();
        fatal("at least one --model is required");
    }

    int n_nodes = 0;
    for (const auto &g : args.cfg.groups)
        n_nodes += g.count;
    say("[edgertfleet] %d node(s) in %zu pool(s), %zu model(s), "
        "%.1f s window, seed %llu, route %s, placement %s\n",
        n_nodes, args.cfg.groups.size(), args.cfg.models.size(),
        args.cfg.duration_s,
        static_cast<unsigned long long>(args.cfg.seed),
        fleet::routePolicyName(args.cfg.route_policy),
        fleet::placementPolicyName(args.cfg.placement));

    fleet::FleetReport report = fleet::runFleet(args.cfg);

    for (const auto &m : report.models) {
        say("[edgertfleet] %-18s %d node(s) | offered %.0f qps | "
            "goodput %.0f qps | shed %lld | p50 %.2f ms | p99 "
            "%.2f ms | SLO %.1f ms | attainment %.2f%%\n",
            m.model.c_str(), m.serving_nodes, m.offered_qps,
            m.goodput_qps, static_cast<long long>(m.shed),
            m.p50_ms, m.p99_ms, m.slo_ms, m.attainment_pct);
    }
    for (const auto &g : report.groups)
        say("[edgertfleet] pool %-12s (%s) %d node(s) | "
            "quarantined %d | failed %d | completed %lld | p99 "
            "%.2f ms\n",
            g.group.c_str(), g.dev_class.c_str(), g.nodes,
            g.quarantined, g.failed,
            static_cast<long long>(g.completed), g.p99_ms);
    for (const auto &e : report.events)
        say("[edgertfleet] t=%.3f s %s %s%s%s | rerouted %lld | "
            "remapped %.2f%% of key space\n",
            e.t_s, e.kind.c_str(), e.node_name.c_str(),
            e.reason.empty() ? "" : ": ", e.reason.c_str(),
            static_cast<long long>(e.rerouted), e.remap_pct);
    for (const auto &ro : report.rollouts) {
        say("[edgertfleet] rollout %-12s build %llu %s\n",
            ro.model.c_str(),
            static_cast<unsigned long long>(
                ro.candidate_build_id),
            ro.halted ? "HALTED (canary absorbed the bad build)"
                      : "completed");
        for (const auto &v : ro.verdicts)
            say("[edgertfleet]   class %-10s %s (drift %.3f%%, "
                "kernel remap %.1f%%)%s%s\n",
                v.dev_class.c_str(),
                v.accepted ? "accepted" : "REJECTED",
                v.disagreement_pct, v.kernel_remap_pct,
                v.reason.empty() ? "" : ": ", v.reason.c_str());
        for (const auto &s : ro.stages)
            say("[edgertfleet]   stage %.0f%% at t=%.1f s: %s, "
                "cohort %d, switched %d, quarantined %d\n",
                s.pct, s.t_s,
                s.executed ? "executed" : "skipped", s.cohort,
                s.switched, s.quarantined);
    }
    if (report.alerts.pages + report.alerts.warns > 0)
        say("[edgertfleet] alerts: %lld page / %lld warn / %lld "
            "clear; first page at %.3f s\n",
            static_cast<long long>(report.alerts.pages),
            static_cast<long long>(report.alerts.warns),
            static_cast<long long>(report.alerts.clears),
            report.alerts.first_page_s);
    say("[edgertfleet] fleet: offered %lld (%.0f qps aggregate) | "
        "completed %lld | shed %lld | unaccounted %lld | p99 "
        "%.2f ms\n",
        static_cast<long long>(report.offered),
        report.aggregate_offered_qps,
        static_cast<long long>(report.completed),
        static_cast<long long>(report.shed),
        static_cast<long long>(report.unaccounted), report.p99_ms);

    if (!args.report_out.empty()) {
        std::FILE *f = std::fopen(args.report_out.c_str(), "w");
        if (!f)
            fatal("cannot write '", args.report_out, "'");
        std::string json = report.toJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        say("[edgertfleet] report written to %s\n",
            args.report_out.c_str());
    }
    if (!args.metrics_out.empty()) {
        if (args.metrics_format == "prom")
            obs::MetricRegistry::global().savePromText(
                args.metrics_out);
        else
            obs::MetricRegistry::global().save(args.metrics_out);
        say("[edgertfleet] metrics written to %s (%s)\n",
            args.metrics_out.c_str(), args.metrics_format.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // fatal() has already printed the diagnostic through the log
    // sink; a bad flag or config must exit non-zero, not abort.
    try {
        return run(argc, argv);
    } catch (const FatalError &) {
        return 1;
    }
}
