/**
 * @file
 * EdgeRT quickstart: build a TensorRT-style engine for ResNet-18,
 * inspect what the optimizer did, and measure inference latency and
 * throughput on a simulated Jetson Xavier NX.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "runtime/measure.hh"

int
main()
{
    using namespace edgert;

    // 1. Get a trained model (frozen graph + weights).
    nn::Network net = nn::buildZooModel("resnet-18");
    std::printf("model: %s  (%lld convs, %lld max-pools, %.2f MiB "
                "fp32)\n",
                net.name().c_str(),
                static_cast<long long>(net.convCount()),
                static_cast<long long>(net.maxPoolCount()),
                static_cast<double>(net.modelSizeBytes()) /
                    (1024.0 * 1024.0));

    // 2. Build an FP16 engine on the target device.
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    core::BuilderConfig cfg;
    cfg.precision = nn::Precision::kFp16;
    cfg.build_id = 1; // pin for a reproducible engine
    core::Builder builder(nx, cfg);

    core::BuildReport report;
    core::Engine engine = builder.build(net, &report);

    std::printf("\noptimizer: %d dead layers removed, %d no-ops "
                "elided,\n           %d layers fused vertically, %d "
                "horizontal merges -> %d nodes\n",
                report.optimizer.dead_layers_removed,
                report.optimizer.noops_elided,
                report.optimizer.layers_fused,
                report.optimizer.horizontal_merges,
                report.optimizer.nodes);
    std::printf("engine: %.2f MiB plan, %lld kernels/inference, "
                "fingerprint %016llx\n",
                static_cast<double>(engine.planSizeBytes()) /
                    (1024.0 * 1024.0),
                static_cast<long long>(engine.kernelCount()),
                static_cast<unsigned long long>(engine.fingerprint()));

    // 3. Latency, the paper's way: 10 runs, each including the
    //    engine H2D copy, with an nvprof-like profiler attached.
    auto lat = runtime::measureLatency(engine, nx);
    std::printf("\nlatency on %s @ %.0f MHz: %.2f ms (std %.2f)\n",
                nx.name.c_str(), nx.gpu_clock_ghz * 1e3, lat.mean_ms,
                lat.std_ms);
    std::printf("  memcpy %.2f ms | kernels %.2f ms\n",
                lat.memcpy_mean_ms, lat.kernel_mean_ms);

    // 4. Compare against un-optimized (framework FP32) execution.
    core::Engine unopt = builder.buildUnoptimized(net);
    runtime::ThroughputOptions topt;
    topt.threads = 1;
    auto fps_trt = runtime::measureThroughput(engine, nx, topt);
    auto fps_raw = runtime::measureThroughput(unopt, nx, topt);
    std::printf("\nthroughput @ max clock: TensorRT-style %.1f FPS "
                "vs un-optimized %.1f FPS (%.1fx)\n",
                fps_trt.aggregate_fps, fps_raw.aggregate_fps,
                fps_trt.aggregate_fps /
                    std::max(1e-9, fps_raw.aggregate_fps));
    std::printf("GPU utilization at 1 thread: %.1f%%\n",
                fps_trt.gpu_util_pct);
    return 0;
}
