/**
 * @file
 * Advanced Driving Assistance System pipeline (paper §VI-A).
 *
 * A pedestrian-detection inference must reach the braking subsystem
 * within a hard deadline. The example demonstrates the paper's
 * WCET hazards:
 *
 *  1. Rebuilding the engine changes its latency distribution —
 *     a WCET budget validated against one build can be violated by
 *     the next build of the *same frozen model*.
 *  2. An infrastructure upgrade from NX to the bigger AGX can
 *     *increase* latency for some engines (Finding 4); small pilot
 *     experiments, not spec sheets, must drive upgrade decisions.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "runtime/measure.hh"

using namespace edgert;

namespace {

/** Steady-state per-frame latency (engine resident, copies piped). */
runtime::LatencyStats
steadyLatency(const core::Engine &e, const gpusim::DeviceSpec &dev,
              std::uint64_t noise_seed)
{
    runtime::LatencyOptions opts;
    opts.with_profiler = false;          // production: no nvprof
    opts.upload_weights_per_run = false; // engine stays resident
    opts.runs = 50;
    opts.noise_seed = noise_seed;
    return runtime::measureLatency(e, dev, opts);
}

double
worstCaseMs(const runtime::LatencyStats &s)
{
    return *std::max_element(s.samples_ms.begin(),
                             s.samples_ms.end());
}

} // namespace

int
main()
{
    constexpr double kDeadlineMs = 25.0; // braking-path budget

    std::printf("=== ADAS pedestrian detection, %0.0f ms braking "
                "deadline ===\n\n",
                kDeadlineMs);

    nn::Network net = nn::buildZooModel("pednet");
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    // --- Hazard 1: WCET across rebuilds of the same model ---
    std::printf("%-10s %-12s %-12s %-10s %s\n", "build", "mean (ms)",
                "p100 (ms)", "budget?", "engine MiB");
    double wcet_min = 1e300, wcet_max = 0.0;
    for (std::uint64_t build = 1; build <= 6; build++) {
        core::BuilderConfig cfg;
        cfg.build_id = build;
        core::Engine e = core::Builder(nx, cfg).build(net);
        auto lat = steadyLatency(e, nx, build);
        double wcet = worstCaseMs(lat);
        wcet_min = std::min(wcet_min, wcet);
        wcet_max = std::max(wcet_max, wcet);
        std::printf("#%-9llu %-12.2f %-12.2f %-10s %.2f\n",
                    static_cast<unsigned long long>(build),
                    lat.mean_ms, wcet,
                    wcet <= kDeadlineMs ? "ok" : "VIOLATED",
                    static_cast<double>(e.planSizeBytes()) /
                        (1024.0 * 1024.0));
    }
    std::printf("\nObserved WCET varies %.2f..%.2f ms across "
                "rebuilds of one frozen model. A WCET analysis is "
                "only valid for the *exact engine binary* it was "
                "performed on: pin the build, ship the serialized "
                "plan, and re-certify on every rebuild.\n",
                wcet_min, wcet_max);

    // --- Hazard 2: the hardware upgrade that slows you down ---
    std::printf("\n=== Fleet upgrade pilot: NX -> AGX ===\n");
    core::BuilderConfig cfg;
    cfg.build_id = 99;
    core::Engine e_nx = core::Builder(nx, cfg).build(net);
    core::Engine e_agx = core::Builder(agx, cfg).build(net);

    // Cold-start latency matters too: the ADAS re-initializes its
    // context on every ignition cycle.
    runtime::LatencyOptions cold;
    cold.with_profiler = false;
    auto cold_nx = runtime::measureLatency(e_nx, nx, cold);
    auto cold_agx = runtime::measureLatency(e_agx, agx, cold);
    auto warm_nx = steadyLatency(e_nx, nx, 7);
    auto warm_agx = steadyLatency(e_agx, agx, 7);

    std::printf("%-22s %-12s %s\n", "", "NX", "AGX (native engine)");
    std::printf("%-22s %-12.2f %.2f\n", "cold start (ms)",
                cold_nx.mean_ms, cold_agx.mean_ms);
    std::printf("%-22s %-12.2f %.2f\n", "steady frame (ms)",
                warm_nx.mean_ms, warm_agx.mean_ms);
    bool anomaly = cold_agx.mean_ms > cold_nx.mean_ms ||
                   warm_agx.mean_ms > warm_nx.mean_ms;
    std::printf("\n%s\n",
                anomaly
                    ? "The 4x-more-expensive AGX is SLOWER on at "
                      "least one metric for this model -- exactly "
                      "the paper's Finding 4. Pilot before you "
                      "purchase."
                    : "AGX is faster on both metrics for this "
                      "build (rebuild and re-check: the outcome is "
                      "not deterministic).");
    return 0;
}
