/**
 * @file
 * Traffic-intersection control (paper §VI-A).
 *
 * A single edge device ingests several camera feeds, runs vehicle
 * detection on each with one shared engine (CUDA-stream
 * concurrency), reads number plates of red-light violators, and
 * issues fines. The example demonstrates:
 *
 *  1. the positive findings — one device sustains many camera feeds
 *     at high aggregate FPS and utilization;
 *  2. the hazard — two intersections that *rebuilt* the same frozen
 *     model locally can disagree on which vehicle to fine, while
 *     units that deploy one serialized engine binary always agree.
 */

#include <cstdio>
#include <set>
#include <string>

#include "common/rng.hh"
#include "core/builder.hh"
#include "data/detection.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "runtime/measure.hh"

using namespace edgert;

namespace {

int
countFines(const data::TrafficDataset &ds,
           const data::SurrogateDetector &detector,
           std::uint64_t fingerprint, std::set<std::string> &fined)
{
    data::SurrogatePlateReader ocr(fingerprint);
    int fines = 0;
    for (std::size_t i = 0; i < ds.size(); i++) {
        const auto &scene = ds.at(i);
        auto dets = detector.detect(scene);
        // A vehicle crossing the stop line during red: the scene's
        // first ground-truth vehicle in the lower image third.
        for (std::size_t g = 0; g < scene.ground_truth.size(); g++) {
            const auto &gt = scene.ground_truth[g];
            if (gt.box.y2 < 0.8)
                continue; // not at the stop line
            // Was it detected?
            bool detected = false;
            for (const auto &d : dets)
                if (d.cls == gt.cls && data::iou(d.box, gt.box) > 0.5)
                    detected = true;
            if (!detected)
                continue;
            std::string plate =
                ocr.read(gt.plate, hashCombine(scene.seed(), g));
            fined.insert(plate);
            fines++;
        }
    }
    return fines;
}

} // namespace

int
main()
{
    std::printf("=== Intersection controller on a simulated Xavier "
                "NX ===\n\n");

    // --- Capacity check: how many cameras can one box serve? ---
    gpusim::DeviceSpec nx = gpusim::DeviceSpec::xavierNX();
    nn::Network net = nn::buildZooModel("tiny-yolov3");
    core::BuilderConfig cfg;
    cfg.build_id = 2024;
    core::Engine engine = core::Builder(nx, cfg).build(net);

    std::printf("%-8s %-14s %-12s %s\n", "cameras", "aggregate FPS",
                "per-camera", "GPU util");
    for (int cameras : {1, 4, 8, 12, 16}) {
        runtime::ThroughputOptions topt;
        topt.threads = cameras;
        topt.frames_per_thread = 20;
        auto r = runtime::measureThroughput(engine, nx, topt);
        std::printf("%-8d %-14.1f %-12.2f %.1f%%\n", cameras,
                    r.aggregate_fps, r.per_thread_fps,
                    r.gpu_util_pct);
    }
    std::printf("\nA 25-FPS camera needs 25 FPS/feed: one NX serves "
                "all four approaches of the intersection with "
                "headroom.\n");

    // --- The enforcement-consistency hazard ---
    std::printf("\n=== Rule enforcement across two deployed units "
                "===\n");
    data::TrafficDataset week_of_violations(500);

    // Unit A and unit B each rebuild the engine on-site (default
    // workflow): different fingerprints.
    core::BuilderConfig site_a, site_b;
    site_a.build_id = 777001; // "Tuesday's build at intersection A"
    site_b.build_id = 777002; // "Wednesday's build at intersection B"
    core::Engine ea = core::Builder(nx, site_a).build(net);
    core::Engine eb = core::Builder(nx, site_b).build(net);

    data::SurrogateDetector det_a("tiny-yolov3", ea.fingerprint(),
                                  true);
    data::SurrogateDetector det_b("tiny-yolov3", eb.fingerprint(),
                                  true);
    std::set<std::string> fined_a, fined_b;
    int n_a = countFines(week_of_violations, det_a,
                         ea.fingerprint(), fined_a);
    int n_b = countFines(week_of_violations, det_b,
                         eb.fingerprint(), fined_b);

    std::set<std::string> only_a, only_b;
    for (const auto &p : fined_a)
        if (!fined_b.count(p))
            only_a.insert(p);
    for (const auto &p : fined_b)
        if (!fined_a.count(p))
            only_b.insert(p);

    std::printf("unit A fined %d vehicles, unit B fined %d; plates "
                "fined by only one unit: %zu\n",
                n_a, n_b, only_a.size() + only_b.size());
    if (!only_a.empty())
        std::printf("example: plate %s fined by unit A only -- "
                    "legally indefensible.\n",
                    only_a.begin()->c_str());

    // Mitigation: build once, serialize, deploy the same binary.
    core::Engine master = core::Builder(nx, site_a).build(net);
    auto blob = master.serialize();
    core::Engine unit1 = core::Engine::deserialize(blob).value();
    core::Engine unit2 = core::Engine::deserialize(blob).value();
    data::SurrogateDetector det1("tiny-yolov3", unit1.fingerprint(),
                                 true);
    data::SurrogateDetector det2("tiny-yolov3", unit2.fingerprint(),
                                 true);
    std::set<std::string> f1, f2;
    countFines(week_of_violations, det1, unit1.fingerprint(), f1);
    countFines(week_of_violations, det2, unit2.fingerprint(), f2);
    std::printf("\nAfter deploying ONE serialized engine to both "
                "units: fine sets %s.\n",
                f1 == f2 ? "IDENTICAL" : "still differ (bug!)");
    return f1 == f2 ? 0 : 1;
}
