/**
 * @file
 * Engine-generation variability in miniature (Findings 2 and 6).
 *
 * Builds N engines from one frozen ResNet-18, then diffs them:
 * tactic selections, kernel counts, plan sizes, latencies, and
 * prediction disagreements — the full non-determinism surface the
 * paper characterizes, in one program.
 */

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "core/builder.hh"
#include "data/datasets.hh"
#include "data/surrogate.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "runtime/measure.hh"

using namespace edgert;

int
main()
{
    constexpr int kEngines = 5;

    nn::Network net = nn::buildZooModel("resnet-18");
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();

    std::printf("Building %d engines from one frozen %s on %s...\n\n",
                kEngines, net.name().c_str(), agx.name.c_str());

    std::vector<core::Engine> engines;
    std::vector<core::BuildReport> reports;
    for (int i = 0; i < kEngines; i++) {
        core::BuilderConfig cfg;
        cfg.build_id = 9000 + static_cast<std::uint64_t>(i);
        core::BuildReport rep;
        engines.push_back(
            core::Builder(agx, cfg).build(net, &rep));
        reports.push_back(std::move(rep));
    }

    // --- Plan-level diffs ---
    std::printf("%-8s %-18s %-10s %-10s %s\n", "engine",
                "fingerprint", "plan MiB", "kernels", "latency ms");
    for (int i = 0; i < kEngines; i++) {
        runtime::LatencyOptions opts;
        opts.with_profiler = false;
        auto lat = runtime::measureLatency(engines[i], agx, opts);
        std::printf("#%-7d %016llx %-10.2f %-10lld %.2f\n", i + 1,
                    static_cast<unsigned long long>(
                        engines[i].fingerprint()),
                    static_cast<double>(
                        engines[i].planSizeBytes()) /
                        (1024.0 * 1024.0),
                    static_cast<long long>(
                        engines[i].kernelCount()),
                    lat.mean_ms);
    }

    // --- Tactic diffs: which nodes chose differently? ---
    std::printf("\nNodes whose tactic differs from engine #1:\n");
    int diffs = 0;
    for (std::size_t n = 0; n < reports[0].tuning.size(); n++) {
        std::set<std::string> choices;
        for (const auto &rep : reports)
            choices.insert(rep.tuning[n].chosen_tactic);
        if (choices.size() > 1) {
            diffs++;
            if (diffs <= 6) {
                std::printf("  %-14s -> %zu distinct tactics (e.g. "
                            "%s)\n",
                            reports[0].tuning[n].node_name.c_str(),
                            choices.size(),
                            choices.begin()->c_str());
            }
        }
    }
    std::printf("  %d of %zu fused nodes map to different kernels "
                "across the %d builds.\n",
                diffs, reports[0].tuning.size(), kEngines);

    // --- Output diffs on the adversarial dataset ---
    data::AdversarialDataset ds(100, 20, {1, 5});
    std::printf("\nPairwise prediction mismatches (out of %zu):\n",
                ds.size());
    for (int i = 0; i < kEngines; i++) {
        auto a = data::SurrogateClassifier::forEngine(
            "resnet-18", engines[static_cast<std::size_t>(i)]
                             .fingerprint());
        for (int j = i + 1; j < kEngines; j++) {
            auto b = data::SurrogateClassifier::forEngine(
                "resnet-18", engines[static_cast<std::size_t>(j)]
                                 .fingerprint());
            std::size_t mismatch = 0;
            for (std::size_t k = 0; k < ds.size(); k++)
                if (a.predict(ds.at(k)) != b.predict(ds.at(k)))
                    mismatch++;
            std::printf("  engine %d vs %d: %zu\n", i + 1, j + 1,
                        mismatch);
        }
    }

    std::printf("\nSame model, same device, same software -- and no "
                "two engines are quite the same machine.\n");
    return 0;
}
