/**
 * @file
 * Multi-model ADAS stack on one edge GPU.
 *
 * Production vehicles run several networks side by side: pedestrian
 * detection (safety-critical), lane segmentation, and an
 * infotainment-grade scene classifier. This example runs all three
 * concurrently on a simulated Xavier AGX and shows how CUDA stream
 * *priorities* protect the safety-critical model's latency when the
 * GPU is oversubscribed — and what happens without them.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/builder.hh"
#include "gpusim/device.hh"
#include "nn/model_zoo.hh"
#include "runtime/context.hh"

using namespace edgert;

namespace {

struct ModelSlot
{
    const char *label;
    const char *zoo_name;
    double priority;
    int frames;
};

/** Per-model p99-ish latency when all models run concurrently. */
std::vector<double>
runStack(const gpusim::DeviceSpec &dev,
         const std::vector<core::Engine> &engines,
         const std::vector<ModelSlot> &slots, bool use_priorities)
{
    gpusim::GpuSim sim(dev.atMaxClock());
    std::vector<runtime::ExecutionContext> ctxs;
    std::vector<std::vector<runtime::InferenceHandle>> handles(
        slots.size());

    for (std::size_t i = 0; i < slots.size(); i++) {
        double w = use_priorities ? slots[i].priority : 1.0;
        int stream = i == 0 && !use_priorities
                         ? 0
                         : sim.createStream(w);
        ctxs.emplace_back(engines[i], sim, stream);
        ctxs.back().enqueueWeightUpload();
    }
    for (std::size_t i = 0; i < slots.size(); i++) {
        for (int f = 0; f < slots[i].frames; f++) {
            handles[i].push_back(
                ctxs[i].enqueuePipelinedInference());
            ctxs[i].enqueueHostGap(0.0003);
        }
    }
    sim.run();

    std::vector<double> worst(slots.size(), 0.0);
    for (std::size_t i = 0; i < slots.size(); i++) {
        for (std::size_t f = 2; f < handles[i].size(); f++) {
            double ms = (sim.eventSeconds(handles[i][f].end) -
                         sim.eventSeconds(handles[i][f].begin)) *
                        1e3;
            worst[i] = std::max(worst[i], ms);
        }
    }
    return worst;
}

} // namespace

int
main()
{
    gpusim::DeviceSpec agx = gpusim::DeviceSpec::xavierAGX();
    const std::vector<ModelSlot> slots = {
        {"pedestrian detection (safety)", "pednet", 8.0, 30},
        {"lane segmentation", "fcn-resnet18-cityscapes", 2.0, 30},
        {"scene classifier (infotainment)", "googlenet", 1.0, 30},
    };

    std::printf("=== Three-model ADAS stack on %s ===\n\n",
                agx.name.c_str());

    std::vector<core::Engine> engines;
    for (const auto &s : slots) {
        nn::Network net = nn::buildZooModel(s.zoo_name);
        core::BuilderConfig cfg;
        cfg.build_id = 42;
        engines.push_back(core::Builder(agx, cfg).build(net));
        std::printf("built %-34s (%s, %.1f MiB plan)\n", s.label,
                    s.zoo_name,
                    static_cast<double>(
                        engines.back().planSizeBytes()) /
                        (1024.0 * 1024.0));
    }

    auto flat = runStack(agx, engines, slots, false);
    auto prio = runStack(agx, engines, slots, true);

    std::printf("\nworst-case frame latency (ms), GPU "
                "oversubscribed:\n");
    std::printf("%-36s %-18s %s\n", "model", "equal priority",
                "weighted streams");
    for (std::size_t i = 0; i < slots.size(); i++)
        std::printf("%-36s %-18.2f %.2f\n", slots[i].label, flat[i],
                    prio[i]);

    bool protected_ok = prio[0] < flat[0];
    std::printf("\n%s\n",
                protected_ok
                    ? "Weighted streams cut the safety-critical "
                      "model's worst-case latency while the "
                      "best-effort models absorb the slack — the "
                      "mitigation §VI-A's WCET discussion calls "
                      "for."
                    : "Priorities did not help here; increase the "
                      "weight ratio or isolate the critical model.");
    return 0;
}
