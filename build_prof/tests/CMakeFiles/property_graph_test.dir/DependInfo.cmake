
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_graph_test.cc" "tests/CMakeFiles/property_graph_test.dir/property_graph_test.cc.o" "gcc" "tests/CMakeFiles/property_graph_test.dir/property_graph_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_prof/src/runtime/CMakeFiles/edgert_runtime.dir/DependInfo.cmake"
  "/root/repo/build_prof/src/core/CMakeFiles/edgert_core.dir/DependInfo.cmake"
  "/root/repo/build_prof/src/profile/CMakeFiles/edgert_profile.dir/DependInfo.cmake"
  "/root/repo/build_prof/src/perfmodel/CMakeFiles/edgert_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build_prof/src/data/CMakeFiles/edgert_data.dir/DependInfo.cmake"
  "/root/repo/build_prof/src/nn/CMakeFiles/edgert_nn.dir/DependInfo.cmake"
  "/root/repo/build_prof/src/gpusim/CMakeFiles/edgert_gpusim.dir/DependInfo.cmake"
  "/root/repo/build_prof/src/obs/CMakeFiles/edgert_obs.dir/DependInfo.cmake"
  "/root/repo/build_prof/src/common/CMakeFiles/edgert_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
