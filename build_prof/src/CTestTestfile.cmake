# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build_prof/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("nn")
subdirs("gpusim")
subdirs("core")
subdirs("runtime")
subdirs("profile")
subdirs("data")
subdirs("perfmodel")
subdirs("serve")
subdirs("deploy")
