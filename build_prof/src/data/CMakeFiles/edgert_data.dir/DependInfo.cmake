
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/datasets.cc" "src/data/CMakeFiles/edgert_data.dir/datasets.cc.o" "gcc" "src/data/CMakeFiles/edgert_data.dir/datasets.cc.o.d"
  "/root/repo/src/data/detection.cc" "src/data/CMakeFiles/edgert_data.dir/detection.cc.o" "gcc" "src/data/CMakeFiles/edgert_data.dir/detection.cc.o.d"
  "/root/repo/src/data/surrogate.cc" "src/data/CMakeFiles/edgert_data.dir/surrogate.cc.o" "gcc" "src/data/CMakeFiles/edgert_data.dir/surrogate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_prof/src/common/CMakeFiles/edgert_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
