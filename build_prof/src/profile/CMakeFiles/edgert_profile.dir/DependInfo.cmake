
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/nvprof.cc" "src/profile/CMakeFiles/edgert_profile.dir/nvprof.cc.o" "gcc" "src/profile/CMakeFiles/edgert_profile.dir/nvprof.cc.o.d"
  "/root/repo/src/profile/tegrastats.cc" "src/profile/CMakeFiles/edgert_profile.dir/tegrastats.cc.o" "gcc" "src/profile/CMakeFiles/edgert_profile.dir/tegrastats.cc.o.d"
  "/root/repo/src/profile/trace_export.cc" "src/profile/CMakeFiles/edgert_profile.dir/trace_export.cc.o" "gcc" "src/profile/CMakeFiles/edgert_profile.dir/trace_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_prof/src/gpusim/CMakeFiles/edgert_gpusim.dir/DependInfo.cmake"
  "/root/repo/build_prof/src/obs/CMakeFiles/edgert_obs.dir/DependInfo.cmake"
  "/root/repo/build_prof/src/common/CMakeFiles/edgert_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
