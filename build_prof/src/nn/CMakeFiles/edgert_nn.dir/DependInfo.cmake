
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/analysis.cc" "src/nn/CMakeFiles/edgert_nn.dir/analysis.cc.o" "gcc" "src/nn/CMakeFiles/edgert_nn.dir/analysis.cc.o.d"
  "/root/repo/src/nn/dot.cc" "src/nn/CMakeFiles/edgert_nn.dir/dot.cc.o" "gcc" "src/nn/CMakeFiles/edgert_nn.dir/dot.cc.o.d"
  "/root/repo/src/nn/executor.cc" "src/nn/CMakeFiles/edgert_nn.dir/executor.cc.o" "gcc" "src/nn/CMakeFiles/edgert_nn.dir/executor.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/edgert_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/edgert_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/model_zoo.cc" "src/nn/CMakeFiles/edgert_nn.dir/model_zoo.cc.o" "gcc" "src/nn/CMakeFiles/edgert_nn.dir/model_zoo.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/nn/CMakeFiles/edgert_nn.dir/network.cc.o" "gcc" "src/nn/CMakeFiles/edgert_nn.dir/network.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/edgert_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/edgert_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/edgert_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/edgert_nn.dir/tensor.cc.o.d"
  "/root/repo/src/nn/weights.cc" "src/nn/CMakeFiles/edgert_nn.dir/weights.cc.o" "gcc" "src/nn/CMakeFiles/edgert_nn.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_prof/src/common/CMakeFiles/edgert_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
