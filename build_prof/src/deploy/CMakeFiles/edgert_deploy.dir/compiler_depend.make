# Empty compiler generated dependencies file for edgert_deploy.
# This may be replaced when dependencies are built.
