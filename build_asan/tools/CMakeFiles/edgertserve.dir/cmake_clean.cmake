file(REMOVE_RECURSE
  "CMakeFiles/edgertserve.dir/edgertserve.cc.o"
  "CMakeFiles/edgertserve.dir/edgertserve.cc.o.d"
  "edgertserve"
  "edgertserve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgertserve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
