# Empty compiler generated dependencies file for edgertserve.
# This may be replaced when dependencies are built.
