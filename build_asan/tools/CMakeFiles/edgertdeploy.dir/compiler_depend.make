# Empty compiler generated dependencies file for edgertdeploy.
# This may be replaced when dependencies are built.
