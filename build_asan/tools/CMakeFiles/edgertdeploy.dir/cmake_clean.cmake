file(REMOVE_RECURSE
  "CMakeFiles/edgertdeploy.dir/edgertdeploy.cc.o"
  "CMakeFiles/edgertdeploy.dir/edgertdeploy.cc.o.d"
  "edgertdeploy"
  "edgertdeploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgertdeploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
