file(REMOVE_RECURSE
  "CMakeFiles/edgertexec.dir/edgertexec.cc.o"
  "CMakeFiles/edgertexec.dir/edgertexec.cc.o.d"
  "edgertexec"
  "edgertexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgertexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
