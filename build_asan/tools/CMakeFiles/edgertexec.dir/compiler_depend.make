# Empty compiler generated dependencies file for edgertexec.
# This may be replaced when dependencies are built.
