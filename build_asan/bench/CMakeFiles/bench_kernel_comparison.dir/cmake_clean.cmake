file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_comparison.dir/bench_kernel_comparison.cc.o"
  "CMakeFiles/bench_kernel_comparison.dir/bench_kernel_comparison.cc.o.d"
  "bench_kernel_comparison"
  "bench_kernel_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
