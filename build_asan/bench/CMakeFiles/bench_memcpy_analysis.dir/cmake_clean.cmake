file(REMOVE_RECURSE
  "CMakeFiles/bench_memcpy_analysis.dir/bench_memcpy_analysis.cc.o"
  "CMakeFiles/bench_memcpy_analysis.dir/bench_memcpy_analysis.cc.o.d"
  "bench_memcpy_analysis"
  "bench_memcpy_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memcpy_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
