# Empty dependencies file for bench_engine_variance.
# This may be replaced when dependencies are built.
