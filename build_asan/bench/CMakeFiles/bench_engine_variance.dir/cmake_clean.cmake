file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_variance.dir/bench_engine_variance.cc.o"
  "CMakeFiles/bench_engine_variance.dir/bench_engine_variance.cc.o.d"
  "bench_engine_variance"
  "bench_engine_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
