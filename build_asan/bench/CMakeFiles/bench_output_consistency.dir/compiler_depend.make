# Empty compiler generated dependencies file for bench_output_consistency.
# This may be replaced when dependencies are built.
