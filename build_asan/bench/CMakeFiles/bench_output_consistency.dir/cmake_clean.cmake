file(REMOVE_RECURSE
  "CMakeFiles/bench_output_consistency.dir/bench_output_consistency.cc.o"
  "CMakeFiles/bench_output_consistency.dir/bench_output_consistency.cc.o.d"
  "bench_output_consistency"
  "bench_output_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_output_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
