# Empty dependencies file for bench_model_sizes.
# This may be replaced when dependencies are built.
