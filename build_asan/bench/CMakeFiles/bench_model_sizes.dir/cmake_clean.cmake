file(REMOVE_RECURSE
  "CMakeFiles/bench_model_sizes.dir/bench_model_sizes.cc.o"
  "CMakeFiles/bench_model_sizes.dir/bench_model_sizes.cc.o.d"
  "bench_model_sizes"
  "bench_model_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
