file(REMOVE_RECURSE
  "CMakeFiles/bench_findings.dir/bench_findings.cc.o"
  "CMakeFiles/bench_findings.dir/bench_findings.cc.o.d"
  "bench_findings"
  "bench_findings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_findings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
