# Empty compiler generated dependencies file for bench_findings.
# This may be replaced when dependencies are built.
