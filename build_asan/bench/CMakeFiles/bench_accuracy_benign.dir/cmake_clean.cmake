file(REMOVE_RECURSE
  "CMakeFiles/bench_accuracy_benign.dir/bench_accuracy_benign.cc.o"
  "CMakeFiles/bench_accuracy_benign.dir/bench_accuracy_benign.cc.o.d"
  "bench_accuracy_benign"
  "bench_accuracy_benign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy_benign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
