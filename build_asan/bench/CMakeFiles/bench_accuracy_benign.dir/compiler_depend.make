# Empty compiler generated dependencies file for bench_accuracy_benign.
# This may be replaced when dependencies are built.
