# Empty dependencies file for bench_accuracy_adversarial.
# This may be replaced when dependencies are built.
