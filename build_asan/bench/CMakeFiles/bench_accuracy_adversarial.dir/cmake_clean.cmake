file(REMOVE_RECURSE
  "CMakeFiles/bench_accuracy_adversarial.dir/bench_accuracy_adversarial.cc.o"
  "CMakeFiles/bench_accuracy_adversarial.dir/bench_accuracy_adversarial.cc.o.d"
  "bench_accuracy_adversarial"
  "bench_accuracy_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
