file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_matrix.dir/bench_latency_matrix.cc.o"
  "CMakeFiles/bench_latency_matrix.dir/bench_latency_matrix.cc.o.d"
  "bench_latency_matrix"
  "bench_latency_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
