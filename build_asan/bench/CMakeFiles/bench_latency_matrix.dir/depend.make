# Empty dependencies file for bench_latency_matrix.
# This may be replaced when dependencies are built.
