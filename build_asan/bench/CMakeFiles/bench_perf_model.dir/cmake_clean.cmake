file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_model.dir/bench_perf_model.cc.o"
  "CMakeFiles/bench_perf_model.dir/bench_perf_model.cc.o.d"
  "bench_perf_model"
  "bench_perf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
