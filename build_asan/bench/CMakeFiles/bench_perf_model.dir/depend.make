# Empty dependencies file for bench_perf_model.
# This may be replaced when dependencies are built.
