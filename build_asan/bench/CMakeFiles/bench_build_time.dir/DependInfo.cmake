
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_build_time.cc" "bench/CMakeFiles/bench_build_time.dir/bench_build_time.cc.o" "gcc" "bench/CMakeFiles/bench_build_time.dir/bench_build_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_asan/src/runtime/CMakeFiles/edgert_runtime.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/core/CMakeFiles/edgert_core.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/profile/CMakeFiles/edgert_profile.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/perfmodel/CMakeFiles/edgert_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/data/CMakeFiles/edgert_data.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/nn/CMakeFiles/edgert_nn.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/gpusim/CMakeFiles/edgert_gpusim.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/obs/CMakeFiles/edgert_obs.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/common/CMakeFiles/edgert_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
