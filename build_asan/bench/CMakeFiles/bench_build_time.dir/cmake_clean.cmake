file(REMOVE_RECURSE
  "CMakeFiles/bench_build_time.dir/bench_build_time.cc.o"
  "CMakeFiles/bench_build_time.dir/bench_build_time.cc.o.d"
  "bench_build_time"
  "bench_build_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_build_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
