# Empty compiler generated dependencies file for bench_build_time.
# This may be replaced when dependencies are built.
