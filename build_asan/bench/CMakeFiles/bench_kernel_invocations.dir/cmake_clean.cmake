file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_invocations.dir/bench_kernel_invocations.cc.o"
  "CMakeFiles/bench_kernel_invocations.dir/bench_kernel_invocations.cc.o.d"
  "bench_kernel_invocations"
  "bench_kernel_invocations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_invocations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
