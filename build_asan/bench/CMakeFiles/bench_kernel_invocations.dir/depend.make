# Empty dependencies file for bench_kernel_invocations.
# This may be replaced when dependencies are built.
