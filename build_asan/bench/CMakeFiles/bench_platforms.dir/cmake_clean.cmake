file(REMOVE_RECURSE
  "CMakeFiles/bench_platforms.dir/bench_platforms.cc.o"
  "CMakeFiles/bench_platforms.dir/bench_platforms.cc.o.d"
  "bench_platforms"
  "bench_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
