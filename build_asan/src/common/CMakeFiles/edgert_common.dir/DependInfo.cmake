
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cliflags.cc" "src/common/CMakeFiles/edgert_common.dir/cliflags.cc.o" "gcc" "src/common/CMakeFiles/edgert_common.dir/cliflags.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/common/CMakeFiles/edgert_common.dir/crc32.cc.o" "gcc" "src/common/CMakeFiles/edgert_common.dir/crc32.cc.o.d"
  "/root/repo/src/common/framing.cc" "src/common/CMakeFiles/edgert_common.dir/framing.cc.o" "gcc" "src/common/CMakeFiles/edgert_common.dir/framing.cc.o.d"
  "/root/repo/src/common/half.cc" "src/common/CMakeFiles/edgert_common.dir/half.cc.o" "gcc" "src/common/CMakeFiles/edgert_common.dir/half.cc.o.d"
  "/root/repo/src/common/json.cc" "src/common/CMakeFiles/edgert_common.dir/json.cc.o" "gcc" "src/common/CMakeFiles/edgert_common.dir/json.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/common/CMakeFiles/edgert_common.dir/logging.cc.o" "gcc" "src/common/CMakeFiles/edgert_common.dir/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/common/CMakeFiles/edgert_common.dir/rng.cc.o" "gcc" "src/common/CMakeFiles/edgert_common.dir/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/common/CMakeFiles/edgert_common.dir/stats.cc.o" "gcc" "src/common/CMakeFiles/edgert_common.dir/stats.cc.o.d"
  "/root/repo/src/common/strutil.cc" "src/common/CMakeFiles/edgert_common.dir/strutil.cc.o" "gcc" "src/common/CMakeFiles/edgert_common.dir/strutil.cc.o.d"
  "/root/repo/src/common/table.cc" "src/common/CMakeFiles/edgert_common.dir/table.cc.o" "gcc" "src/common/CMakeFiles/edgert_common.dir/table.cc.o.d"
  "/root/repo/src/common/threadpool.cc" "src/common/CMakeFiles/edgert_common.dir/threadpool.cc.o" "gcc" "src/common/CMakeFiles/edgert_common.dir/threadpool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
