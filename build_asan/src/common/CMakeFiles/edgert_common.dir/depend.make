# Empty dependencies file for edgert_common.
# This may be replaced when dependencies are built.
