file(REMOVE_RECURSE
  "libedgert_common.a"
)
