file(REMOVE_RECURSE
  "CMakeFiles/edgert_common.dir/cliflags.cc.o"
  "CMakeFiles/edgert_common.dir/cliflags.cc.o.d"
  "CMakeFiles/edgert_common.dir/crc32.cc.o"
  "CMakeFiles/edgert_common.dir/crc32.cc.o.d"
  "CMakeFiles/edgert_common.dir/framing.cc.o"
  "CMakeFiles/edgert_common.dir/framing.cc.o.d"
  "CMakeFiles/edgert_common.dir/half.cc.o"
  "CMakeFiles/edgert_common.dir/half.cc.o.d"
  "CMakeFiles/edgert_common.dir/json.cc.o"
  "CMakeFiles/edgert_common.dir/json.cc.o.d"
  "CMakeFiles/edgert_common.dir/logging.cc.o"
  "CMakeFiles/edgert_common.dir/logging.cc.o.d"
  "CMakeFiles/edgert_common.dir/rng.cc.o"
  "CMakeFiles/edgert_common.dir/rng.cc.o.d"
  "CMakeFiles/edgert_common.dir/stats.cc.o"
  "CMakeFiles/edgert_common.dir/stats.cc.o.d"
  "CMakeFiles/edgert_common.dir/strutil.cc.o"
  "CMakeFiles/edgert_common.dir/strutil.cc.o.d"
  "CMakeFiles/edgert_common.dir/table.cc.o"
  "CMakeFiles/edgert_common.dir/table.cc.o.d"
  "CMakeFiles/edgert_common.dir/threadpool.cc.o"
  "CMakeFiles/edgert_common.dir/threadpool.cc.o.d"
  "libedgert_common.a"
  "libedgert_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgert_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
