# Empty dependencies file for edgert_profile.
# This may be replaced when dependencies are built.
