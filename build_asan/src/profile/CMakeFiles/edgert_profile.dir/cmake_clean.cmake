file(REMOVE_RECURSE
  "CMakeFiles/edgert_profile.dir/nvprof.cc.o"
  "CMakeFiles/edgert_profile.dir/nvprof.cc.o.d"
  "CMakeFiles/edgert_profile.dir/tegrastats.cc.o"
  "CMakeFiles/edgert_profile.dir/tegrastats.cc.o.d"
  "CMakeFiles/edgert_profile.dir/trace_export.cc.o"
  "CMakeFiles/edgert_profile.dir/trace_export.cc.o.d"
  "libedgert_profile.a"
  "libedgert_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgert_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
