file(REMOVE_RECURSE
  "libedgert_profile.a"
)
