file(REMOVE_RECURSE
  "CMakeFiles/edgert_nn.dir/analysis.cc.o"
  "CMakeFiles/edgert_nn.dir/analysis.cc.o.d"
  "CMakeFiles/edgert_nn.dir/dot.cc.o"
  "CMakeFiles/edgert_nn.dir/dot.cc.o.d"
  "CMakeFiles/edgert_nn.dir/executor.cc.o"
  "CMakeFiles/edgert_nn.dir/executor.cc.o.d"
  "CMakeFiles/edgert_nn.dir/layer.cc.o"
  "CMakeFiles/edgert_nn.dir/layer.cc.o.d"
  "CMakeFiles/edgert_nn.dir/model_zoo.cc.o"
  "CMakeFiles/edgert_nn.dir/model_zoo.cc.o.d"
  "CMakeFiles/edgert_nn.dir/network.cc.o"
  "CMakeFiles/edgert_nn.dir/network.cc.o.d"
  "CMakeFiles/edgert_nn.dir/serialize.cc.o"
  "CMakeFiles/edgert_nn.dir/serialize.cc.o.d"
  "CMakeFiles/edgert_nn.dir/tensor.cc.o"
  "CMakeFiles/edgert_nn.dir/tensor.cc.o.d"
  "CMakeFiles/edgert_nn.dir/weights.cc.o"
  "CMakeFiles/edgert_nn.dir/weights.cc.o.d"
  "libedgert_nn.a"
  "libedgert_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgert_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
