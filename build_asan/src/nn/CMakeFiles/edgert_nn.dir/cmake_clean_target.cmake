file(REMOVE_RECURSE
  "libedgert_nn.a"
)
