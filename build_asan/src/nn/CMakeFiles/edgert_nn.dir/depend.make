# Empty dependencies file for edgert_nn.
# This may be replaced when dependencies are built.
