# Empty dependencies file for edgert_obs.
# This may be replaced when dependencies are built.
