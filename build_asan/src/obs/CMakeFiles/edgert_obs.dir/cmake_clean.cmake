file(REMOVE_RECURSE
  "CMakeFiles/edgert_obs.dir/clock.cc.o"
  "CMakeFiles/edgert_obs.dir/clock.cc.o.d"
  "CMakeFiles/edgert_obs.dir/metrics.cc.o"
  "CMakeFiles/edgert_obs.dir/metrics.cc.o.d"
  "CMakeFiles/edgert_obs.dir/trace.cc.o"
  "CMakeFiles/edgert_obs.dir/trace.cc.o.d"
  "libedgert_obs.a"
  "libedgert_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgert_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
