file(REMOVE_RECURSE
  "libedgert_obs.a"
)
