file(REMOVE_RECURSE
  "libedgert_gpusim.a"
)
