# Empty dependencies file for edgert_gpusim.
# This may be replaced when dependencies are built.
