file(REMOVE_RECURSE
  "CMakeFiles/edgert_gpusim.dir/device.cc.o"
  "CMakeFiles/edgert_gpusim.dir/device.cc.o.d"
  "CMakeFiles/edgert_gpusim.dir/sim.cc.o"
  "CMakeFiles/edgert_gpusim.dir/sim.cc.o.d"
  "CMakeFiles/edgert_gpusim.dir/timing.cc.o"
  "CMakeFiles/edgert_gpusim.dir/timing.cc.o.d"
  "libedgert_gpusim.a"
  "libedgert_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgert_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
