
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device.cc" "src/gpusim/CMakeFiles/edgert_gpusim.dir/device.cc.o" "gcc" "src/gpusim/CMakeFiles/edgert_gpusim.dir/device.cc.o.d"
  "/root/repo/src/gpusim/sim.cc" "src/gpusim/CMakeFiles/edgert_gpusim.dir/sim.cc.o" "gcc" "src/gpusim/CMakeFiles/edgert_gpusim.dir/sim.cc.o.d"
  "/root/repo/src/gpusim/timing.cc" "src/gpusim/CMakeFiles/edgert_gpusim.dir/timing.cc.o" "gcc" "src/gpusim/CMakeFiles/edgert_gpusim.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_asan/src/common/CMakeFiles/edgert_common.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/obs/CMakeFiles/edgert_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
