file(REMOVE_RECURSE
  "libedgert_perfmodel.a"
)
