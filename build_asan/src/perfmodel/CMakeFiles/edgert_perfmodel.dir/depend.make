# Empty dependencies file for edgert_perfmodel.
# This may be replaced when dependencies are built.
