file(REMOVE_RECURSE
  "CMakeFiles/edgert_perfmodel.dir/bsp.cc.o"
  "CMakeFiles/edgert_perfmodel.dir/bsp.cc.o.d"
  "libedgert_perfmodel.a"
  "libedgert_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgert_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
