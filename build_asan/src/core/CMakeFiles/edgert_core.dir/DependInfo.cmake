
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builder.cc" "src/core/CMakeFiles/edgert_core.dir/builder.cc.o" "gcc" "src/core/CMakeFiles/edgert_core.dir/builder.cc.o.d"
  "/root/repo/src/core/calibrator.cc" "src/core/CMakeFiles/edgert_core.dir/calibrator.cc.o" "gcc" "src/core/CMakeFiles/edgert_core.dir/calibrator.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/edgert_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/edgert_core.dir/engine.cc.o.d"
  "/root/repo/src/core/folding.cc" "src/core/CMakeFiles/edgert_core.dir/folding.cc.o" "gcc" "src/core/CMakeFiles/edgert_core.dir/folding.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/edgert_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/edgert_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/tactics.cc" "src/core/CMakeFiles/edgert_core.dir/tactics.cc.o" "gcc" "src/core/CMakeFiles/edgert_core.dir/tactics.cc.o.d"
  "/root/repo/src/core/timing_cache.cc" "src/core/CMakeFiles/edgert_core.dir/timing_cache.cc.o" "gcc" "src/core/CMakeFiles/edgert_core.dir/timing_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_asan/src/nn/CMakeFiles/edgert_nn.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/gpusim/CMakeFiles/edgert_gpusim.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/obs/CMakeFiles/edgert_obs.dir/DependInfo.cmake"
  "/root/repo/build_asan/src/common/CMakeFiles/edgert_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
