file(REMOVE_RECURSE
  "CMakeFiles/edgert_core.dir/builder.cc.o"
  "CMakeFiles/edgert_core.dir/builder.cc.o.d"
  "CMakeFiles/edgert_core.dir/calibrator.cc.o"
  "CMakeFiles/edgert_core.dir/calibrator.cc.o.d"
  "CMakeFiles/edgert_core.dir/engine.cc.o"
  "CMakeFiles/edgert_core.dir/engine.cc.o.d"
  "CMakeFiles/edgert_core.dir/folding.cc.o"
  "CMakeFiles/edgert_core.dir/folding.cc.o.d"
  "CMakeFiles/edgert_core.dir/optimizer.cc.o"
  "CMakeFiles/edgert_core.dir/optimizer.cc.o.d"
  "CMakeFiles/edgert_core.dir/tactics.cc.o"
  "CMakeFiles/edgert_core.dir/tactics.cc.o.d"
  "CMakeFiles/edgert_core.dir/timing_cache.cc.o"
  "CMakeFiles/edgert_core.dir/timing_cache.cc.o.d"
  "libedgert_core.a"
  "libedgert_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgert_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
