file(REMOVE_RECURSE
  "libedgert_core.a"
)
