# Empty dependencies file for edgert_core.
# This may be replaced when dependencies are built.
