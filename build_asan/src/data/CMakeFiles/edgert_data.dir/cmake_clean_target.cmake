file(REMOVE_RECURSE
  "libedgert_data.a"
)
