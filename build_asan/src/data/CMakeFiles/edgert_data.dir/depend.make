# Empty dependencies file for edgert_data.
# This may be replaced when dependencies are built.
