file(REMOVE_RECURSE
  "CMakeFiles/edgert_data.dir/datasets.cc.o"
  "CMakeFiles/edgert_data.dir/datasets.cc.o.d"
  "CMakeFiles/edgert_data.dir/detection.cc.o"
  "CMakeFiles/edgert_data.dir/detection.cc.o.d"
  "CMakeFiles/edgert_data.dir/surrogate.cc.o"
  "CMakeFiles/edgert_data.dir/surrogate.cc.o.d"
  "libedgert_data.a"
  "libedgert_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgert_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
