# Empty dependencies file for edgert_serve.
# This may be replaced when dependencies are built.
