file(REMOVE_RECURSE
  "libedgert_serve.a"
)
