file(REMOVE_RECURSE
  "CMakeFiles/edgert_serve.dir/batcher.cc.o"
  "CMakeFiles/edgert_serve.dir/batcher.cc.o.d"
  "CMakeFiles/edgert_serve.dir/predictor.cc.o"
  "CMakeFiles/edgert_serve.dir/predictor.cc.o.d"
  "CMakeFiles/edgert_serve.dir/queue.cc.o"
  "CMakeFiles/edgert_serve.dir/queue.cc.o.d"
  "CMakeFiles/edgert_serve.dir/scheduler.cc.o"
  "CMakeFiles/edgert_serve.dir/scheduler.cc.o.d"
  "CMakeFiles/edgert_serve.dir/server.cc.o"
  "CMakeFiles/edgert_serve.dir/server.cc.o.d"
  "CMakeFiles/edgert_serve.dir/workload.cc.o"
  "CMakeFiles/edgert_serve.dir/workload.cc.o.d"
  "libedgert_serve.a"
  "libedgert_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgert_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
