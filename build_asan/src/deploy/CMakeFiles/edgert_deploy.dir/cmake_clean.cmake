file(REMOVE_RECURSE
  "CMakeFiles/edgert_deploy.dir/drift_gate.cc.o"
  "CMakeFiles/edgert_deploy.dir/drift_gate.cc.o.d"
  "CMakeFiles/edgert_deploy.dir/hotswap.cc.o"
  "CMakeFiles/edgert_deploy.dir/hotswap.cc.o.d"
  "CMakeFiles/edgert_deploy.dir/rebuild_worker.cc.o"
  "CMakeFiles/edgert_deploy.dir/rebuild_worker.cc.o.d"
  "CMakeFiles/edgert_deploy.dir/repository.cc.o"
  "CMakeFiles/edgert_deploy.dir/repository.cc.o.d"
  "libedgert_deploy.a"
  "libedgert_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgert_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
