file(REMOVE_RECURSE
  "libedgert_deploy.a"
)
