# CMake generated Testfile for 
# Source directory: /root/repo/src/deploy
# Build directory: /root/repo/build_asan/src/deploy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
