# Empty dependencies file for edgert_runtime.
# This may be replaced when dependencies are built.
