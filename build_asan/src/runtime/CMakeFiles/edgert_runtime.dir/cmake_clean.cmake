file(REMOVE_RECURSE
  "CMakeFiles/edgert_runtime.dir/context.cc.o"
  "CMakeFiles/edgert_runtime.dir/context.cc.o.d"
  "CMakeFiles/edgert_runtime.dir/measure.cc.o"
  "CMakeFiles/edgert_runtime.dir/measure.cc.o.d"
  "libedgert_runtime.a"
  "libedgert_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgert_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
