file(REMOVE_RECURSE
  "libedgert_runtime.a"
)
