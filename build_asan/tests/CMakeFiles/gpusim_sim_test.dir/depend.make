# Empty dependencies file for gpusim_sim_test.
# This may be replaced when dependencies are built.
