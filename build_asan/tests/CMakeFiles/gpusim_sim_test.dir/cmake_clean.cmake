file(REMOVE_RECURSE
  "CMakeFiles/gpusim_sim_test.dir/gpusim_sim_test.cc.o"
  "CMakeFiles/gpusim_sim_test.dir/gpusim_sim_test.cc.o.d"
  "gpusim_sim_test"
  "gpusim_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
