file(REMOVE_RECURSE
  "CMakeFiles/core_optimizer_test.dir/core_optimizer_test.cc.o"
  "CMakeFiles/core_optimizer_test.dir/core_optimizer_test.cc.o.d"
  "core_optimizer_test"
  "core_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
