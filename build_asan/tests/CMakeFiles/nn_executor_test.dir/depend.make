# Empty dependencies file for nn_executor_test.
# This may be replaced when dependencies are built.
