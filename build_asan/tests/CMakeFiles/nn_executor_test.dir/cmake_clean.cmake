file(REMOVE_RECURSE
  "CMakeFiles/nn_executor_test.dir/nn_executor_test.cc.o"
  "CMakeFiles/nn_executor_test.dir/nn_executor_test.cc.o.d"
  "nn_executor_test"
  "nn_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
