file(REMOVE_RECURSE
  "CMakeFiles/nn_model_zoo_test.dir/nn_model_zoo_test.cc.o"
  "CMakeFiles/nn_model_zoo_test.dir/nn_model_zoo_test.cc.o.d"
  "nn_model_zoo_test"
  "nn_model_zoo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_model_zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
