# Empty compiler generated dependencies file for serve_queue_test.
# This may be replaced when dependencies are built.
