file(REMOVE_RECURSE
  "CMakeFiles/serve_queue_test.dir/serve_queue_test.cc.o"
  "CMakeFiles/serve_queue_test.dir/serve_queue_test.cc.o.d"
  "serve_queue_test"
  "serve_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
