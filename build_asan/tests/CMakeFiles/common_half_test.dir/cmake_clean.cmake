file(REMOVE_RECURSE
  "CMakeFiles/common_half_test.dir/common_half_test.cc.o"
  "CMakeFiles/common_half_test.dir/common_half_test.cc.o.d"
  "common_half_test"
  "common_half_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_half_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
