# Empty dependencies file for common_half_test.
# This may be replaced when dependencies are built.
