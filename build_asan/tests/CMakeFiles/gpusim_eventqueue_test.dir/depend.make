# Empty dependencies file for gpusim_eventqueue_test.
# This may be replaced when dependencies are built.
