file(REMOVE_RECURSE
  "CMakeFiles/gpusim_eventqueue_test.dir/gpusim_eventqueue_test.cc.o"
  "CMakeFiles/gpusim_eventqueue_test.dir/gpusim_eventqueue_test.cc.o.d"
  "gpusim_eventqueue_test"
  "gpusim_eventqueue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_eventqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
