file(REMOVE_RECURSE
  "CMakeFiles/core_folding_test.dir/core_folding_test.cc.o"
  "CMakeFiles/core_folding_test.dir/core_folding_test.cc.o.d"
  "core_folding_test"
  "core_folding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_folding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
