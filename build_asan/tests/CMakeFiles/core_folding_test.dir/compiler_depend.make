# Empty compiler generated dependencies file for core_folding_test.
# This may be replaced when dependencies are built.
