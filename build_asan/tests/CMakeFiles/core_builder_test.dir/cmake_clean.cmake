file(REMOVE_RECURSE
  "CMakeFiles/core_builder_test.dir/core_builder_test.cc.o"
  "CMakeFiles/core_builder_test.dir/core_builder_test.cc.o.d"
  "core_builder_test"
  "core_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
