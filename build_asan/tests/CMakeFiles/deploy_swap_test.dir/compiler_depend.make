# Empty compiler generated dependencies file for deploy_swap_test.
# This may be replaced when dependencies are built.
