file(REMOVE_RECURSE
  "CMakeFiles/deploy_swap_test.dir/deploy_swap_test.cc.o"
  "CMakeFiles/deploy_swap_test.dir/deploy_swap_test.cc.o.d"
  "deploy_swap_test"
  "deploy_swap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_swap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
