# Empty dependencies file for core_calibrator_test.
# This may be replaced when dependencies are built.
