file(REMOVE_RECURSE
  "CMakeFiles/core_calibrator_test.dir/core_calibrator_test.cc.o"
  "CMakeFiles/core_calibrator_test.dir/core_calibrator_test.cc.o.d"
  "core_calibrator_test"
  "core_calibrator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_calibrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
