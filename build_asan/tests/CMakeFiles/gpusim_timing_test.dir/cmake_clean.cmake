file(REMOVE_RECURSE
  "CMakeFiles/gpusim_timing_test.dir/gpusim_timing_test.cc.o"
  "CMakeFiles/gpusim_timing_test.dir/gpusim_timing_test.cc.o.d"
  "gpusim_timing_test"
  "gpusim_timing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
