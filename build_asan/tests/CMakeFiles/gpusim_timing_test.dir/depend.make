# Empty dependencies file for gpusim_timing_test.
# This may be replaced when dependencies are built.
