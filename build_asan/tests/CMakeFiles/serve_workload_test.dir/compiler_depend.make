# Empty compiler generated dependencies file for serve_workload_test.
# This may be replaced when dependencies are built.
