file(REMOVE_RECURSE
  "CMakeFiles/serve_workload_test.dir/serve_workload_test.cc.o"
  "CMakeFiles/serve_workload_test.dir/serve_workload_test.cc.o.d"
  "serve_workload_test"
  "serve_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
