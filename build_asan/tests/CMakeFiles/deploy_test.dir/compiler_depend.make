# Empty compiler generated dependencies file for deploy_test.
# This may be replaced when dependencies are built.
