file(REMOVE_RECURSE
  "CMakeFiles/deploy_test.dir/deploy_test.cc.o"
  "CMakeFiles/deploy_test.dir/deploy_test.cc.o.d"
  "deploy_test"
  "deploy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
