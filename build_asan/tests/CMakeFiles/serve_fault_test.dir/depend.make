# Empty dependencies file for serve_fault_test.
# This may be replaced when dependencies are built.
