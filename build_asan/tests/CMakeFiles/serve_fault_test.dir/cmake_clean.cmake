file(REMOVE_RECURSE
  "CMakeFiles/serve_fault_test.dir/serve_fault_test.cc.o"
  "CMakeFiles/serve_fault_test.dir/serve_fault_test.cc.o.d"
  "serve_fault_test"
  "serve_fault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
