file(REMOVE_RECURSE
  "CMakeFiles/fuzz_corruption_test.dir/fuzz_corruption_test.cc.o"
  "CMakeFiles/fuzz_corruption_test.dir/fuzz_corruption_test.cc.o.d"
  "fuzz_corruption_test"
  "fuzz_corruption_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_corruption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
