# Empty compiler generated dependencies file for fuzz_corruption_test.
# This may be replaced when dependencies are built.
