file(REMOVE_RECURSE
  "CMakeFiles/obs_e2e_test.dir/obs_e2e_test.cc.o"
  "CMakeFiles/obs_e2e_test.dir/obs_e2e_test.cc.o.d"
  "obs_e2e_test"
  "obs_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
