# Empty dependencies file for obs_e2e_test.
# This may be replaced when dependencies are built.
