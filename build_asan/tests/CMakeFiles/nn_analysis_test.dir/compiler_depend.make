# Empty compiler generated dependencies file for nn_analysis_test.
# This may be replaced when dependencies are built.
