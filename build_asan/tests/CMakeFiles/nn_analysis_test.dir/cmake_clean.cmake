file(REMOVE_RECURSE
  "CMakeFiles/nn_analysis_test.dir/nn_analysis_test.cc.o"
  "CMakeFiles/nn_analysis_test.dir/nn_analysis_test.cc.o.d"
  "nn_analysis_test"
  "nn_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
