file(REMOVE_RECURSE
  "CMakeFiles/core_timing_cache_test.dir/core_timing_cache_test.cc.o"
  "CMakeFiles/core_timing_cache_test.dir/core_timing_cache_test.cc.o.d"
  "core_timing_cache_test"
  "core_timing_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_timing_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
