# Empty dependencies file for core_timing_cache_test.
# This may be replaced when dependencies are built.
