file(REMOVE_RECURSE
  "CMakeFiles/multi_model_pipeline.dir/multi_model_pipeline.cpp.o"
  "CMakeFiles/multi_model_pipeline.dir/multi_model_pipeline.cpp.o.d"
  "multi_model_pipeline"
  "multi_model_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_model_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
