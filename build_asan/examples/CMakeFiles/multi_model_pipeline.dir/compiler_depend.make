# Empty compiler generated dependencies file for multi_model_pipeline.
# This may be replaced when dependencies are built.
