# Empty compiler generated dependencies file for adas_pipeline.
# This may be replaced when dependencies are built.
