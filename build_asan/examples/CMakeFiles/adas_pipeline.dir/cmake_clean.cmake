file(REMOVE_RECURSE
  "CMakeFiles/adas_pipeline.dir/adas_pipeline.cpp.o"
  "CMakeFiles/adas_pipeline.dir/adas_pipeline.cpp.o.d"
  "adas_pipeline"
  "adas_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adas_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
