file(REMOVE_RECURSE
  "CMakeFiles/engine_variability.dir/engine_variability.cpp.o"
  "CMakeFiles/engine_variability.dir/engine_variability.cpp.o.d"
  "engine_variability"
  "engine_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
