# Empty compiler generated dependencies file for engine_variability.
# This may be replaced when dependencies are built.
