file(REMOVE_RECURSE
  "CMakeFiles/traffic_intersection.dir/traffic_intersection.cpp.o"
  "CMakeFiles/traffic_intersection.dir/traffic_intersection.cpp.o.d"
  "traffic_intersection"
  "traffic_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
