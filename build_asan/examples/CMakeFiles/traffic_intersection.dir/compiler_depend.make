# Empty compiler generated dependencies file for traffic_intersection.
# This may be replaced when dependencies are built.
